(* Tests for the incremental, domain-parallel analysis engine:

   - SCC condensation of the call graph (structure, topological order,
     agreement with the monolithic transitive closure);
   - invalidation correctness: mutate one procedure, [Engine.update],
     and the result must be indistinguishable from a from-scratch
     [Engine.create] of the edited program — facts byte-identical,
     mod-ref views equal, sampled oracle answers equal — across
     workloads, fuzz seeds and several mutation kinds (digest-neutral
     constant toggles, fact-preserving store duplication, effect-changing
     block erasure, procedure removal);
   - update reports: exactly the edited procedure recomputed for
     body-local edits, oracle rebuilds only when inputs demand it;
   - parallel [create] is observationally identical to sequential;
   - [Opt.Modref.of_engine] agrees with the monolithic
     [Opt.Modref.compute];
   - the scaleN corpus ([Gen.Scale]) typechecks. *)

open Support
open Ir

let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89 ]

let lower_gen seed =
  let g = Gen.Generator.generate ~size:((seed mod 3) + 1) seed in
  Lower.lower_string ~file:"<gen>" g.Gen.Generator.source

let kinds =
  [ Tbaa.Engine.Type_decl;
    Tbaa.Engine.Field_type_decl;
    Tbaa.Engine.Sm_field_type_refs ]

let take n l = List.filteri (fun i _ -> i < n) l

(* ------------------------------------------------------------------ *)
(* Condensation                                                        *)
(* ------------------------------------------------------------------ *)

let test_condense_structure () =
  let i = Ident.intern in
  let a = i "a" and b = i "b" and c = i "c" in
  let d = i "d" and e = i "e" and f = i "f" in
  let edges =
    [ (a, [ b ]); (b, [ c ]); (c, [ a ]); (d, [ a; f ]); (e, [ e ]);
      (f, []) ]
  in
  let callees n = Ident.Set.of_list (List.assoc n edges) in
  let cond = Callgraph.condense ~nodes:[ a; b; c; d; e; f ] ~callees in
  Alcotest.(check int)
    "component count" 4
    (Array.length cond.Callgraph.cond_comps);
  (* topological: every successor index is smaller *)
  Array.iteri
    (fun ci succs ->
      List.iter
        (fun s ->
          if s >= ci then
            Alcotest.failf "comp %d has successor %d (not topological)" ci s)
        succs)
    cond.Callgraph.cond_succs;
  (* members sorted, index consistent *)
  Array.iteri
    (fun ci members ->
      let sorted = List.sort Ident.compare members in
      if not (List.equal Ident.equal sorted members) then
        Alcotest.failf "comp %d members not sorted" ci;
      List.iter
        (fun m ->
          Alcotest.(check int)
            "cond_index round-trip" ci
            (Hashtbl.find cond.Callgraph.cond_index m))
        members)
    cond.Callgraph.cond_comps;
  (* the cycle {a,b,c} is one component; d, e, f are singletons *)
  let comp_of n = Hashtbl.find cond.Callgraph.cond_index n in
  Alcotest.(check int) "a and b share a component" (comp_of a) (comp_of b);
  Alcotest.(check int) "a and c share a component" (comp_of a) (comp_of c);
  if comp_of d = comp_of a || comp_of e = comp_of a || comp_of f = comp_of a
  then Alcotest.fail "singleton merged into the cycle";
  (* d's successors are exactly the components of a and f *)
  Alcotest.(check (list int))
    "d's successor components"
    (List.sort compare [ comp_of a; comp_of f ])
    (List.sort compare cond.Callgraph.cond_succs.(comp_of d));
  (* e's self-loop is elided *)
  Alcotest.(check (list int)) "self-loop elided" []
    cond.Callgraph.cond_succs.(comp_of e)

(* Reachability through the condensation DAG must equal the monolithic
   transitive closure (restricted to procedures with bodies). *)
let test_condense_matches_closure () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let cond = Callgraph.condense_program program in
      let closure = Callgraph.transitive_closure program in
      let nc = Array.length cond.Callgraph.cond_comps in
      (* member sets of every component reachable from c, including c *)
      let reach = Array.make nc Ident.Set.empty in
      for c = 0 to nc - 1 do
        reach.(c) <-
          List.fold_left
            (fun acc s -> Ident.Set.union acc reach.(s))
            (Ident.Set.of_list cond.Callgraph.cond_comps.(c))
            cond.Callgraph.cond_succs.(c)
      done;
      let has_body =
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun p -> Hashtbl.replace tbl p.Cfg.pr_name ())
          program.Cfg.prog_procs;
        Hashtbl.mem tbl
      in
      List.iter
        (fun p ->
          let name = p.Cfg.pr_name in
          let c = Hashtbl.find cond.Callgraph.cond_index name in
          let expect =
            Ident.Set.add name
              (Ident.Set.filter has_body
                 (Option.value
                    (Hashtbl.find_opt closure name)
                    ~default:Ident.Set.empty))
          in
          if not (Ident.Set.equal reach.(c) expect) then
            Alcotest.failf "seed %d: condensation reach <> closure for %s"
              seed (Ident.name name))
        program.Cfg.prog_procs)
    seeds

(* ------------------------------------------------------------------ *)
(* Equivalence harness                                                 *)
(* ------------------------------------------------------------------ *)

let check_facts_equal label (a : Tbaa.Facts.t) (b : Tbaa.Facts.t) =
  let fail what = Alcotest.failf "%s: facts differ (%s)" label what in
  if
    not
      (List.equal
         (fun (d1, s1) (d2, s2) -> d1 = d2 && s1 = s2)
         a.Tbaa.Facts.assignments b.Tbaa.Facts.assignments)
  then fail "assignments";
  if
    not
      (List.equal
         (fun (x : Tbaa.Facts.field_addr) y ->
           Ident.equal x.Tbaa.Facts.fa_field y.Tbaa.Facts.fa_field
           && x.Tbaa.Facts.fa_recv = y.Tbaa.Facts.fa_recv
           && x.Tbaa.Facts.fa_content = y.Tbaa.Facts.fa_content)
         a.Tbaa.Facts.field_addrs b.Tbaa.Facts.field_addrs)
  then fail "field_addrs";
  if
    not
      (List.equal
         (fun (x : Tbaa.Facts.elem_addr) y ->
           x.Tbaa.Facts.ea_array = y.Tbaa.Facts.ea_array
           && x.Tbaa.Facts.ea_elem = y.Tbaa.Facts.ea_elem)
         a.Tbaa.Facts.elem_addrs b.Tbaa.Facts.elem_addrs)
  then fail "elem_addrs";
  if
    not
      (List.equal
         (fun (x : Reg.var) y -> x.Reg.v_id = y.Reg.v_id)
         a.Tbaa.Facts.var_addrs b.Tbaa.Facts.var_addrs)
  then fail "var_addrs";
  if
    not
      (List.equal
         (fun (x : Minim3.Types.tid) y -> x = y)
         a.Tbaa.Facts.byref_formal_tids b.Tbaa.Facts.byref_formal_tids)
  then fail "byref_formal_tids";
  if
    not
      (List.equal
         (fun (x : Tbaa.Facts.memref) y ->
           Ident.equal x.Tbaa.Facts.mr_proc y.Tbaa.Facts.mr_proc
           && Apath.equal x.Tbaa.Facts.mr_path y.Tbaa.Facts.mr_path
           && x.Tbaa.Facts.mr_is_store = y.Tbaa.Facts.mr_is_store)
         a.Tbaa.Facts.memrefs b.Tbaa.Facts.memrefs)
  then fail "memrefs"

(* The updated engine must be indistinguishable from a from-scratch one:
   identical facts, identical mod-ref views, identical oracle answers. *)
let check_engine_equiv label updated fresh (program : Cfg.program) =
  check_facts_equal label
    (Tbaa.Engine.facts updated)
    (Tbaa.Engine.facts fresh);
  List.iter
    (fun kind ->
      List.iter
        (fun p ->
          let n = p.Cfg.pr_name in
          if
            not
              (Tbaa.Effects.equal
                 (Tbaa.Engine.modref_direct updated kind n)
                 (Tbaa.Engine.modref_direct fresh kind n))
          then
            Alcotest.failf "%s: direct effects differ for %s (%s)" label
              (Ident.name n)
              (Tbaa.Engine.kind_name kind);
          if
            not
              (Tbaa.Effects.equal
                 (Tbaa.Engine.modref_merged updated kind n)
                 (Tbaa.Engine.modref_merged fresh kind n))
          then
            Alcotest.failf "%s: merged effects differ for %s (%s)" label
              (Ident.name n)
              (Tbaa.Engine.kind_name kind))
        program.Cfg.prog_procs)
    kinds;
  let paths =
    take 30
      (List.map
         (fun (r : Tbaa.Facts.memref) -> r.Tbaa.Facts.mr_path)
         (Tbaa.Engine.facts fresh).Tbaa.Facts.memrefs)
  in
  List.iter
    (fun kind ->
      let ou = Tbaa.Engine.oracle updated kind in
      let off = Tbaa.Engine.oracle fresh kind in
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if
                not
                  (Bool.equal
                     (ou.Tbaa.Oracle.may_alias p q)
                     (off.Tbaa.Oracle.may_alias p q))
              then
                Alcotest.failf "%s: may_alias disagrees (%s) on %s / %s"
                  label
                  (Tbaa.Engine.kind_name kind)
                  (Apath.to_string p) (Apath.to_string q))
            paths)
        paths)
    kinds

(* Materialize every lazy piece so [update] exercises the incremental
   effects maintenance, not a post-update lazy rebuild. *)
let force engine =
  List.iter
    (fun kind ->
      List.iter
        (fun p ->
          ignore (Tbaa.Engine.modref_merged engine kind p.Cfg.pr_name))
        (Tbaa.Engine.program engine).Cfg.prog_procs)
    kinds

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

(* Shared with test_pipeline, which replays the same edits against the
   incremental optimizer sessions. *)
let toggle_const = Test_mutations.toggle_const
let dup_store = Test_mutations.dup_store
let erase_store_block = Test_mutations.erase_store_block

(* ------------------------------------------------------------------ *)
(* Invalidation correctness                                            *)
(* ------------------------------------------------------------------ *)

let programs () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      (w.Workloads.Workload.name, Workloads.Workload.lower w))
    Workloads.Suite.all
  @ List.map
      (fun seed -> (Printf.sprintf "gen-%d" seed, lower_gen seed))
      seeds

let run_mutation ~label ~mutate ~expect_oracles_kept =
  List.iter
    (fun (name, program) ->
      let engine = Tbaa.Engine.create program in
      force engine;
      match mutate program with
      | None -> () (* nothing to mutate in this program *)
      | Some edited ->
        let engine = Tbaa.Engine.update engine program in
        let fresh = Tbaa.Engine.create program in
        force fresh;
        let where = Printf.sprintf "%s/%s" label name in
        check_engine_equiv where engine fresh program;
        (match Tbaa.Engine.last_update engine with
        | None -> Alcotest.failf "%s: no update report" where
        | Some r ->
          if not (List.equal Ident.equal r.Tbaa.Engine.ur_recomputed [ edited ])
          then
            Alcotest.failf "%s: expected only %s recomputed, got [%s]" where
              (Ident.name edited)
              (String.concat "; "
                 (List.map Ident.name r.Tbaa.Engine.ur_recomputed));
          if expect_oracles_kept && r.Tbaa.Engine.ur_oracles_rebuilt then
            Alcotest.failf "%s: oracles rebuilt for an input-preserving edit"
              where))
    (programs ())

let test_update_toggle_const () =
  run_mutation ~label:"toggle-const" ~mutate:toggle_const
    ~expect_oracles_kept:true

let test_update_dup_store () =
  run_mutation ~label:"dup-store" ~mutate:dup_store
    ~expect_oracles_kept:true

let test_update_erase_block () =
  run_mutation ~label:"erase-store-block" ~mutate:erase_store_block
    ~expect_oracles_kept:false

let test_update_noop () =
  List.iter
    (fun (name, program) ->
      let engine = Tbaa.Engine.create program in
      force engine;
      let engine = Tbaa.Engine.update engine program in
      (match Tbaa.Engine.last_update engine with
      | Some r ->
        if r.Tbaa.Engine.ur_recomputed <> [] then
          Alcotest.failf "%s: no-op update recomputed [%s]" name
            (String.concat "; "
               (List.map Ident.name r.Tbaa.Engine.ur_recomputed));
        if r.Tbaa.Engine.ur_oracles_rebuilt then
          Alcotest.failf "%s: no-op update rebuilt oracles" name;
        if r.Tbaa.Engine.ur_callgraph_rebuilt then
          Alcotest.failf "%s: no-op update rebuilt the call graph" name
      | None -> Alcotest.failf "%s: no update report" name);
      let fresh = Tbaa.Engine.create program in
      force fresh;
      check_engine_equiv (Printf.sprintf "noop/%s" name) engine fresh program)
    (programs ())

let test_update_drop_proc () =
  List.iter
    (fun (name, program) ->
      match program.Cfg.prog_procs with
      | [] | [ _ ] -> ()
      | procs ->
        let engine = Tbaa.Engine.create program in
        force engine;
        program.Cfg.prog_procs <- take (List.length procs - 1) procs;
        let engine = Tbaa.Engine.update engine program in
        let fresh = Tbaa.Engine.create program in
        force fresh;
        check_engine_equiv (Printf.sprintf "drop-proc/%s" name) engine fresh
          program)
    (programs ())

(* ------------------------------------------------------------------ *)
(* Parallel create                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_create_equiv () =
  List.iter
    (fun (name, program) ->
      let seq = Tbaa.Engine.create ~domains:1 program in
      force seq;
      let par = Tbaa.Engine.create ~domains:4 program in
      force par;
      check_engine_equiv (Printf.sprintf "parallel/%s" name) par seq program)
    (take 6 (programs ()))

(* ------------------------------------------------------------------ *)
(* Modref: engine view vs monolithic baseline                          *)
(* ------------------------------------------------------------------ *)

let test_modref_of_engine_matches_compute () =
  List.iter
    (fun (name, program) ->
      let engine = Tbaa.Engine.create program in
      List.iter
        (fun kind ->
          let oracle = Tbaa.Engine.oracle engine kind in
          let mono = Opt.Modref.compute program oracle in
          let view = Opt.Modref.of_engine engine kind in
          List.iter
            (fun p ->
              let n = p.Cfg.pr_name in
              let a = Opt.Modref.summary mono n in
              let b = Opt.Modref.summary view n in
              if
                not
                  (Tbaa.Aloc.Set.equal a.Opt.Modref.mods b.Opt.Modref.mods
                  && Tbaa.Aloc.Set.equal a.Opt.Modref.refs b.Opt.Modref.refs)
              then
                Alcotest.failf "%s: modref views differ for %s (%s)" name
                  (Ident.name n)
                  (Tbaa.Engine.kind_name kind))
            program.Cfg.prog_procs)
        kinds)
    (programs ())

(* The refs-side call predicate is what DSE stakes store removals on;
   both mod-ref views must answer it identically for every call site ×
   stored path in the corpus (workloads and fuzz-seed programs alike). *)
let test_call_ref_pred_differential () =
  List.iter
    (fun (name, program) ->
      let store_paths =
        let tbl = Ir.Apath.Tbl.create 32 in
        List.iter
          (fun p ->
            Cfg.iter_instrs p (fun _ i ->
                match i with
                | Ir.Instr.Istore (ap, _) -> Ir.Apath.Tbl.replace tbl ap ()
                | _ -> ()))
          program.Cfg.prog_procs;
        Ir.Apath.Tbl.fold (fun ap () acc -> ap :: acc) tbl []
      in
      let engine = Tbaa.Engine.create program in
      List.iter
        (fun kind ->
          let oracle = Tbaa.Engine.oracle engine kind in
          let mono = Opt.Modref.compute program oracle in
          let view = Opt.Modref.of_engine engine kind in
          List.iter
            (fun p ->
              Cfg.iter_instrs p (fun _ instr ->
                  match instr with
                  | Ir.Instr.Icall (_, target, _) ->
                    let mp = Opt.Modref.call_ref_pred mono oracle target
                    and vp = Opt.Modref.call_ref_pred view oracle target in
                    List.iter
                      (fun sp ->
                        if mp [ sp ] <> vp [ sp ] then
                          Alcotest.failf
                            "%s: call_ref_pred views differ in %s on %s (%s)"
                            name (Ident.name p.Cfg.pr_name)
                            (Ir.Apath.to_string sp)
                            (Tbaa.Engine.kind_name kind))
                      store_paths
                  | _ -> ()))
            program.Cfg.prog_procs)
        kinds)
    (programs ())

(* ------------------------------------------------------------------ *)
(* Scale corpus                                                        *)
(* ------------------------------------------------------------------ *)

let test_scale_typechecks () =
  List.iter
    (fun n ->
      match
        Minim3.Typecheck.check_string_all ~file:"<scale>"
          (Gen.Scale.source n)
      with
      | Ok p ->
        Alcotest.(check int)
          "worker + lib + main procedures present"
          (max 1 n + Gen.Scale.lib_procs + 1)
          (List.length p.Minim3.Tast.procs)
      | Error ds ->
        Alcotest.failf "scale %d does not typecheck: %s" n
          (match ds with
          | d :: _ -> Support.Diag.to_string d
          | [] -> "?"))
    [ 1; 10; 200 ]

let test_scale_incremental () =
  let program =
    Lower.lower_string ~file:"<scale>" (Gen.Scale.source 120)
  in
  let engine = Tbaa.Engine.create program in
  force engine;
  (* edit a library procedure: its dependent workers' merged views ride on
     the propagation path *)
  match erase_store_block program with
  | None -> Alcotest.fail "scale has no store to erase"
  | Some edited ->
    let engine = Tbaa.Engine.update engine program in
    let fresh = Tbaa.Engine.create program in
    force fresh;
    check_engine_equiv "scale-edit" engine fresh program;
    (match Tbaa.Engine.last_update engine with
    | Some r ->
      if not (List.equal Ident.equal r.Tbaa.Engine.ur_recomputed [ edited ])
      then Alcotest.fail "scale-edit: unexpected recomputation set"
    | None -> Alcotest.fail "scale-edit: no update report")

let () =
  Alcotest.run "incremental"
    [ ( "condensation",
        [ Alcotest.test_case "structure on a known graph" `Quick
            test_condense_structure;
          Alcotest.test_case "reachability = transitive closure" `Quick
            test_condense_matches_closure ] );
      ( "invalidation",
        [ Alcotest.test_case "digest-only edit (constant toggle)" `Quick
            test_update_toggle_const;
          Alcotest.test_case "fact-preserving edit (dup store)" `Quick
            test_update_dup_store;
          Alcotest.test_case "effect-changing edit (erase block)" `Quick
            test_update_erase_block;
          Alcotest.test_case "no-op update reuses everything" `Quick
            test_update_noop;
          Alcotest.test_case "procedure removal" `Quick
            test_update_drop_proc ] );
      ( "parallel",
        [ Alcotest.test_case "parallel create = sequential" `Quick
            test_parallel_create_equiv ] );
      ( "modref",
        [ Alcotest.test_case "of_engine = monolithic compute" `Quick
            test_modref_of_engine_matches_compute;
          Alcotest.test_case "call_ref_pred agrees across views" `Quick
            test_call_ref_pred_differential ] );
      ( "scale",
        [ Alcotest.test_case "corpus typechecks" `Quick
            test_scale_typechecks;
          Alcotest.test_case "library edit propagates" `Quick
            test_scale_incremental ] )
    ]
