(* Tests for the simulator: interpreter semantics, counters, the cache
   model, the limit-study tracer, and the redundancy classifier. *)

open Ir

let lower src = Lower.lower_string ~file:"test" src
let run src = Sim.Interp.run (lower src)

let check_output src expected =
  let o = run src in
  Alcotest.(check string) "output" expected o.Sim.Interp.output;
  Alcotest.(check int) "no soft faults" 0 o.Sim.Interp.soft_faults

(* --- language semantics ------------------------------------------------ *)

let test_arith () =
  check_output
    {|
MODULE M;
BEGIN
  PrintInt (2 + 3 * 4); PrintChar (' ');
  PrintInt (17 DIV 5); PrintChar (' ');
  PrintInt (17 MOD 5); PrintChar (' ');
  PrintInt (-3); PrintChar (' ');
  PrintInt (Abs (-9) + Min (2, 1) + Max (5, 7));
END M.
|}
    "14 3 2 -3 17"

let test_bools_and_chars () =
  check_output
    {|
MODULE M;
BEGIN
  PrintBool (TRUE AND FALSE); PrintChar (' ');
  PrintBool (NOT FALSE OR FALSE); PrintChar (' ');
  PrintBool ('a' < 'b'); PrintChar (' ');
  PrintInt (Ord ('A')); PrintChar (Chr (66));
END M.
|}
    "FALSE TRUE TRUE 65B"

let test_control_flow () =
  check_output
    {|
MODULE M;
VAR n: INTEGER;
BEGIN
  n := 0;
  FOR i := 1 TO 5 DO n := n + i; END;
  PrintInt (n); PrintChar (' ');
  n := 0;
  FOR i := 10 TO 0 BY -2 DO n := n + 1; END;
  PrintInt (n); PrintChar (' ');
  n := 0;
  REPEAT n := n + 3; UNTIL n > 7;
  PrintInt (n); PrintChar (' ');
  LOOP
    n := n - 1;
    IF n = 5 THEN EXIT; END;
  END;
  PrintInt (n);
END M.
|}
    "15 6 9 5"

let test_short_circuit_semantics () =
  (* n.val must not be read when n is NIL. *)
  check_output
    {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END;
VAR n: Node;
BEGIN
  n := NIL;
  IF (n # NIL) AND (n.val > 0) THEN
    Print ("yes");
  ELSE
    Print ("no");
  END;
END M.
|}
    "no"

let test_records_and_arrays () =
  check_output
    {|
MODULE M;
TYPE
  Point = RECORD x, y: INTEGER; END;
  Grid = ARRAY [0..3] OF Point;
VAR g: Grid; sum: INTEGER;
BEGIN
  FOR i := 0 TO 3 DO
    g[i].x := i;
    g[i].y := i * i;
  END;
  sum := 0;
  FOR i := 0 TO 3 DO
    sum := sum + g[i].x + g[i].y;
  END;
  PrintInt (sum);
END M.
|}
    "20"

let test_object_dispatch () =
  check_output
    {|
MODULE M;
TYPE
  Shape = OBJECT side: INTEGER; METHODS area (): INTEGER := SquareArea; END;
  Tri = Shape OBJECT OVERRIDES area := TriArea; END;
VAR shapes: ARRAY [0..1] OF Shape; total: INTEGER;
PROCEDURE SquareArea (self: Shape): INTEGER =
  BEGIN RETURN self.side * self.side; END SquareArea;
PROCEDURE TriArea (self: Shape): INTEGER =
  BEGIN RETURN self.side * self.side DIV 2; END TriArea;
BEGIN
  shapes[0] := NEW (Shape);
  shapes[1] := NEW (Tri);
  shapes[0].side := 4;
  shapes[1].side := 4;
  total := 0;
  FOR i := 0 TO 1 DO
    total := total + shapes[i].area ();
  END;
  PrintInt (total);
END M.
|}
    "24"

let test_var_params_and_with () =
  check_output
    {|
MODULE M;
TYPE R = RECORD a, b: INTEGER; END; PR = REF R;
VAR p: PR;
PROCEDURE Swap (VAR x: INTEGER; VAR y: INTEGER) =
  VAR t: INTEGER;
  BEGIN
    t := x; x := y; y := t;
  END Swap;
BEGIN
  p := NEW (PR);
  p.a := 1; p.b := 2;
  Swap (p.a, p.b);
  PrintInt (p.a); PrintInt (p.b);
  WITH slot = p.a DO
    slot := 9;
  END;
  PrintInt (p.a);
END M.
|}
    "219"

let test_recursion_depth () =
  check_output
    {|
MODULE M;
PROCEDURE Fib (n: INTEGER): INTEGER =
  BEGIN
    IF n < 2 THEN RETURN n; END;
    RETURN Fib (n - 1) + Fib (n - 2);
  END Fib;
BEGIN
  PrintInt (Fib (15));
END M.
|}
    "610"

let test_halt () =
  let o =
    run
      {|
MODULE M;
BEGIN
  PrintInt (1);
  Halt ();
  PrintInt (2);
END M.
|}
  in
  Alcotest.(check string) "output before halt" "1" o.Sim.Interp.output;
  Alcotest.(check bool) "halted" true o.Sim.Interp.halted

let test_total_semantics () =
  (* NIL dereference, out-of-bounds and DIV 0 are soft faults, not crashes. *)
  let o =
    run
      {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END; V = REF ARRAY OF INTEGER;
VAR n: Node; v: V;
BEGIN
  PrintInt (n.val);
  v := NEW (V, 2);
  PrintInt (v[5]);
  PrintInt (7 DIV (1 - 1));
END M.
|}
  in
  Alcotest.(check string) "defined results" "000" o.Sim.Interp.output;
  Alcotest.(check bool) "faults counted" true (o.Sim.Interp.soft_faults >= 2)

(* --- counters ----------------------------------------------------------- *)

let test_load_counters () =
  let o =
    run
      {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END;
VAR n: Node; g: INTEGER;
BEGIN
  n := NEW (Node);
  n.val := 3;          (* 0 heap loads: store resolves directly *)
  g := n.val;          (* global read of n (other), heap load of val *)
  g := g + n.val;
END M.
|}
  in
  Alcotest.(check int) "heap loads" 2 o.Sim.Interp.counters.Sim.Interp.heap_loads;
  Alcotest.(check bool) "other loads counted" true
    (o.Sim.Interp.counters.Sim.Interp.other_loads > 0)

let test_dope_load_counted () =
  (* Subscripting an open array reads the dope: 2 heap loads per element
     access; NUMBER adds 1. *)
  let o =
    run
      {|
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V; g: INTEGER;
BEGIN
  v := NEW (V, 4);
  g := v[2];
  g := g + Number (v);
END M.
|}
  in
  Alcotest.(check int) "dope + element + number" 3
    o.Sim.Interp.counters.Sim.Interp.heap_loads

let test_determinism () =
  let src =
    {|
MODULE M;
VAR n: INTEGER;
BEGIN
  n := 1;
  FOR i := 1 TO 20 DO n := (n * 31 + i) MOD 9973; END;
  PrintInt (n);
END M.
|}
  in
  let a = run src and b = run src in
  Alcotest.(check string) "same output" a.Sim.Interp.output b.Sim.Interp.output;
  Alcotest.(check int) "same cycles" a.Sim.Interp.cycles b.Sim.Interp.cycles

(* --- layout ------------------------------------------------------------- *)

let test_layout_offsets () =
  let p =
    Minim3.Typecheck.check_string
      {|
MODULE M;
TYPE
  Inner = RECORD a, b: INTEGER; END;
  Mix = RECORD x: INTEGER; nest: Inner; y: INTEGER; END;
  Obj = OBJECT f: INTEGER; grid: ARRAY [0..2] OF Inner; tail: INTEGER; END;
BEGIN
END M.
|}
  in
  let env = p.Minim3.Tast.tenv in
  let layout = Sim.Layout.create env in
  let tid name = List.assoc (Support.Ident.intern name) p.Minim3.Tast.type_names in
  let f = Support.Ident.intern in
  Alcotest.(check int) "Inner is two slots" 2 (Sim.Layout.size layout (tid "Inner"));
  Alcotest.(check int) "Mix inlines the record" 4 (Sim.Layout.size layout (tid "Mix"));
  Alcotest.(check int) "Mix.y after the nest" 3
    (Sim.Layout.field_offset layout (tid "Mix") (f "y"));
  (* objects: one header slot, then fields *)
  Alcotest.(check int) "Obj.f after header" 1
    (Sim.Layout.field_offset layout (tid "Obj") (f "f"));
  Alcotest.(check int) "Obj.grid" 2
    (Sim.Layout.field_offset layout (tid "Obj") (f "grid"));
  Alcotest.(check int) "Obj.tail after 3 Inners" 8
    (Sim.Layout.field_offset layout (tid "Obj") (f "tail"));
  Alcotest.(check int) "Obj allocation" 9
    (Sim.Layout.alloc_size layout (tid "Obj") ~length:None)

let test_layout_inherited_offsets () =
  let p =
    Minim3.Typecheck.check_string
      {|
MODULE M;
TYPE
  Base = OBJECT a: INTEGER; END;
  Derived = Base OBJECT b: INTEGER; END;
BEGIN
END M.
|}
  in
  let env = p.Minim3.Tast.tenv in
  let layout = Sim.Layout.create env in
  let tid name = List.assoc (Support.Ident.intern name) p.Minim3.Tast.type_names in
  let f = Support.Ident.intern in
  (* A field keeps its offset in every subtype, so dispatch-free field
     access through a supertype-typed pointer is sound. *)
  Alcotest.(check int) "a in Base" 1
    (Sim.Layout.field_offset layout (tid "Base") (f "a"));
  Alcotest.(check int) "a in Derived" 1
    (Sim.Layout.field_offset layout (tid "Derived") (f "a"));
  Alcotest.(check int) "b after a" 2
    (Sim.Layout.field_offset layout (tid "Derived") (f "b"))

(* --- cache -------------------------------------------------------------- *)

let test_cache_basics () =
  let c = Sim.Cache.create ~size_bytes:1024 ~line_bytes:32 () in
  Alcotest.(check bool) "first access misses" false (Sim.Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Sim.Cache.access c 8);
  Alcotest.(check bool) "different line misses" false (Sim.Cache.access c 64);
  (* conflict: 1024-byte direct-mapped, address 0 and 1024 collide *)
  Alcotest.(check bool) "conflicting line evicts" false (Sim.Cache.access c 1024);
  Alcotest.(check bool) "original line was evicted" false (Sim.Cache.access c 0);
  Alcotest.(check int) "misses counted" 4 (Sim.Cache.misses c)

let test_cache_rejects_bad_geometry () =
  List.iter
    (fun (size_bytes, line_bytes) ->
      match Sim.Cache.create ~size_bytes ~line_bytes () with
      | exception Support.Diag.Compile_error _ -> ()
      | _ ->
        Alcotest.failf "Cache.create accepted size=%d line=%d" size_bytes
          line_bytes)
    [ (3000, 32);  (* size not a power of two: set_mask would be wrong *)
      (4096, 48);  (* line not a power of two: line_shift would round up *)
      (1000, 24); (0, 32); (4096, 0); (16, 32) (* size < line *) ]

let test_cache_legal_odd_geometry () =
  (* A perfectly legal but unusual power-of-two geometry: 4 KiB with
     64-byte lines = 64 sets. *)
  let c = Sim.Cache.create ~size_bytes:4096 ~line_bytes:64 () in
  Alcotest.(check bool) "first access misses" false (Sim.Cache.access c 0);
  Alcotest.(check bool) "same 64B line hits" true (Sim.Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Sim.Cache.access c 64);
  (* 4096-byte direct-mapped: addresses 0 and 4096 collide. *)
  Alcotest.(check bool) "wrap conflicts" false (Sim.Cache.access c 4096);
  Alcotest.(check bool) "line 0 was evicted" false (Sim.Cache.access c 0);
  (* A tiny 1-set cache is legal too: every distinct line conflicts. *)
  let one = Sim.Cache.create ~size_bytes:32 ~line_bytes:32 () in
  Alcotest.(check bool) "1-set miss" false (Sim.Cache.access one 0);
  Alcotest.(check bool) "1-set hit" true (Sim.Cache.access one 16);
  Alcotest.(check bool) "1-set conflict" false (Sim.Cache.access one 32)

(* --- limit study ---------------------------------------------------------- *)

let redundant_src =
  {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END;
VAR n: Node; sink: INTEGER;
PROCEDURE P () =
  VAR a: INTEGER; b: INTEGER;
  BEGIN
    a := n.val;
    b := n.val;    (* dynamically redundant *)
    sink := a + b;
  END P;
BEGIN
  n := NEW (Node);
  n.val := 4;
  P ();
  PrintInt (sink);
END M.
|}

let test_limit_detects_redundancy () =
  let program = lower redundant_src in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  Alcotest.(check bool) "found a redundant load" true
    (Sim.Limit.total_redundant tracer >= 1)

let test_limit_rle_removes_redundancy () =
  let program = lower redundant_src in
  let analysis = Tbaa.Analysis.analyze program in
  let _ = Opt.Rle.run program analysis.Tbaa.Analysis.sm_field_type_refs in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  Alcotest.(check int) "no redundancy left" 0 (Sim.Limit.total_redundant tracer)

let test_limit_activation_scoping () =
  (* The same address loaded in two different activations is NOT a
     redundancy under the paper's definition. *)
  let src =
    {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END;
VAR n: Node; sink: INTEGER;
PROCEDURE Get (): INTEGER = BEGIN RETURN n.val; END Get;
BEGIN
  n := NEW (Node);
  n.val := 4;
  sink := Get () + Get ();
  PrintInt (sink);
END M.
|}
  in
  let program = lower src in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  Alcotest.(check int) "different activations, no redundancy" 0
    (Sim.Limit.total_redundant tracer)

let test_classifier_encapsulated () =
  (* Repeated open-array subscripts re-read the dope: Encapsulated. *)
  let src =
    {|
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V; sink: INTEGER;
PROCEDURE P () =
  VAR s: INTEGER;
  BEGIN
    s := 0;
    FOR i := 0 TO 7 DO
      s := s + v[i];   (* dope read every iteration *)
    END;
    sink := s;
  END P;
BEGIN
  v := NEW (V, 8);
  FOR i := 0 TO 7 DO v[i] := i; END;
  P ();
  PrintInt (sink);
END M.
|}
  in
  let program = lower src in
  let analysis = Tbaa.Analysis.analyze program in
  let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
  let _ = Opt.Rle.run program oracle in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  let modref = Opt.Modref.compute program oracle in
  let breakdown = Sim.Classify.classify program oracle modref tracer in
  let enc = List.assoc Sim.Classify.Encapsulated breakdown in
  Alcotest.(check bool) "dope redundancies classified Encapsulated" true (enc > 0)

let test_classifier_conditional () =
  let src =
    {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; END;
VAR n: Node; sink: INTEGER;
PROCEDURE P (c: BOOLEAN) =
  VAR a: INTEGER; b: INTEGER;
  BEGIN
    a := 0;
    IF c THEN a := n.val; END;
    b := n.val;
    sink := a + b;
  END P;
BEGIN
  n := NEW (Node);
  n.val := 3;
  P (TRUE);
  PrintInt (sink);
END M.
|}
  in
  let program = lower src in
  let analysis = Tbaa.Analysis.analyze program in
  let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
  let _ = Opt.Rle.run program oracle in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  let modref = Opt.Modref.compute program oracle in
  let breakdown = Sim.Classify.classify program oracle modref tracer in
  Alcotest.(check bool) "partial redundancy classified Conditional" true
    (List.assoc Sim.Classify.Conditional breakdown > 0)

let test_classifier_breakup () =
  (* The same address reached through two different paths (no copy prop). *)
  let src =
    {|
MODULE M;
TYPE Node = OBJECT val: INTEGER; next: Node; END;
VAR h: Node; sink: INTEGER;
PROCEDURE P () =
  VAR p: Node; a: INTEGER; b: INTEGER;
  BEGIN
    p := h.next;
    a := p.val;
    b := h.next.val;  (* same address as p.val, different path *)
    sink := a + b;
  END P;
BEGIN
  h := NEW (Node);
  h.next := NEW (Node);
  h.next.val := 6;
  P ();
  PrintInt (sink);
END M.
|}
  in
  let program = lower src in
  let analysis = Tbaa.Analysis.analyze program in
  let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
  let _ = Opt.Rle.run program oracle in
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  let modref = Opt.Modref.compute program oracle in
  let breakdown = Sim.Classify.classify program oracle modref tracer in
  Alcotest.(check bool) "different-path redundancy classified Breakup" true
    (List.assoc Sim.Classify.Breakup breakdown > 0)

let () =
  Alcotest.run "sim"
    [ ( "semantics",
        [ Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "bools/chars" `Quick test_bools_and_chars;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "short circuit" `Quick test_short_circuit_semantics;
          Alcotest.test_case "records/arrays" `Quick test_records_and_arrays;
          Alcotest.test_case "dispatch" `Quick test_object_dispatch;
          Alcotest.test_case "var/with" `Quick test_var_params_and_with;
          Alcotest.test_case "recursion" `Quick test_recursion_depth;
          Alcotest.test_case "halt" `Quick test_halt;
          Alcotest.test_case "totality" `Quick test_total_semantics ] );
      ( "counters",
        [ Alcotest.test_case "loads" `Quick test_load_counters;
          Alcotest.test_case "dope loads" `Quick test_dope_load_counted;
          Alcotest.test_case "determinism" `Quick test_determinism ] );
      ( "layout",
        [ Alcotest.test_case "offsets" `Quick test_layout_offsets;
          Alcotest.test_case "inheritance" `Quick test_layout_inherited_offsets ] );
      ( "cache",
        [ Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "rejects bad geometry" `Quick
            test_cache_rejects_bad_geometry;
          Alcotest.test_case "legal odd geometry" `Quick
            test_cache_legal_odd_geometry ] );
      ( "limit",
        [ Alcotest.test_case "detects redundancy" `Quick test_limit_detects_redundancy;
          Alcotest.test_case "rle removes it" `Quick test_limit_rle_removes_redundancy;
          Alcotest.test_case "activation scoping" `Quick test_limit_activation_scoping;
          Alcotest.test_case "classify encapsulated" `Quick test_classifier_encapsulated;
          Alcotest.test_case "classify conditional" `Quick test_classifier_conditional;
          Alcotest.test_case "classify breakup" `Quick test_classifier_breakup ] ) ]
