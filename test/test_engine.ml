(* Tests for the PR-4 scaling layer: hash-consed access paths (physical
   equality must coincide with the historical structural equality on
   well-typed programs), the precomputed O(1) compatibility cores against
   their per-query reference implementations, and the Engine facade's
   oracle handles, counters and stats surface. *)

open Ir

(* Seeds are pinned: every program here is byte-reproducible. *)
let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let lower_gen seed =
  let g = Gen.Generator.generate ~size:((seed mod 3) + 1) seed in
  Lower.lower_string ~file:"<gen>" g.Gen.Generator.source

let paths_of facts =
  List.map (fun (r : Tbaa.Facts.memref) -> r.Tbaa.Facts.mr_path)
    facts.Tbaa.Facts.memrefs

(* --- hash-consing invariants ------------------------------------------- *)

(* The paths of a program, plus every prefix: physical equality must be
   exactly structural equality (the pre-interning [Apath.compare]), hashes
   must agree with equality, and rebuilding a path from its base and
   selector list must return the *same* node. *)
let test_hashcons_physical_eq () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let facts = Tbaa.Facts.collect program in
      let paths =
        List.concat_map (fun p -> Apath.prefixes p) (paths_of facts)
      in
      List.iter
        (fun p ->
          let rebuilt = Apath.make (Apath.base p) (Apath.sels p) in
          if not (Apath.equal rebuilt p) then
            Alcotest.failf "seed %d: make(base, sels) not physically equal: %s"
              seed (Apath.to_string p);
          List.iter
            (fun q ->
              let structural = Apath.compare p q = 0 in
              if not (Bool.equal (Apath.equal p q) structural) then
                Alcotest.failf "seed %d: == vs compare disagree on %s / %s"
                  seed (Apath.to_string p) (Apath.to_string q);
              if structural && Apath.hash p <> Apath.hash q then
                Alcotest.failf "seed %d: equal paths, distinct hashes: %s" seed
                  (Apath.to_string p);
              if structural && Apath.id p <> Apath.id q then
                Alcotest.failf "seed %d: equal paths, distinct ids: %s" seed
                  (Apath.to_string p))
            paths)
        paths)
    seeds

(* Extending shares the spine: the prefix of an extension is the original
   node itself, and re-extending with the same selector hits the intern
   table instead of allocating a fresh path. *)
let test_hashcons_extend_sharing () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let facts = Tbaa.Facts.collect program in
      List.iter
        (fun p ->
          match Apath.last p with
          | None -> ()
          | Some sel ->
            let parent =
              match Apath.prefix p with Some q -> q | None -> assert false
            in
            let again = Apath.extend parent sel in
            if not (Apath.equal again p) then
              Alcotest.failf "seed %d: extend does not re-intern %s" seed
                (Apath.to_string p))
        (paths_of facts))
    seeds

(* --- compatibility cores vs references --------------------------------- *)

let all_tid_pairs tenv f =
  let n = Minim3.Types.count tenv in
  for t1 = 0 to n - 1 do
    for t2 = 0 to n - 1 do
      f t1 t2
    done
  done

let test_subtyping_matches_reference () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let facts = Tbaa.Facts.collect program in
      let tenv = facts.Tbaa.Facts.tenv in
      let fast = Tbaa.Compat.subtyping tenv in
      all_tid_pairs tenv (fun t1 t2 ->
          let a = Tbaa.Compat.query fast t1 t2
          and b = Tbaa.Compat.reference_subtyping tenv t1 t2 in
          if not (Bool.equal a b) then
            Alcotest.failf
              "seed %d: interval compat %b <> reference %b on (%d, %d)" seed a
              b t1 t2))
    seeds

let test_type_refs_matrix_matches_reference () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let facts = Tbaa.Facts.collect program in
      let tenv = facts.Tbaa.Facts.tenv in
      List.iter
        (fun variant ->
          let sm =
            Tbaa.Sm_type_refs.build ~variant ~facts ~world:Tbaa.World.Closed ()
          in
          let matrix = Tbaa.Sm_type_refs.compat_matrix sm in
          all_tid_pairs tenv (fun t1 t2 ->
              let a = Tbaa.Compat.query matrix t1 t2
              and b = Tbaa.Sm_type_refs.compat sm t1 t2 in
              if not (Bool.equal a b) then
                Alcotest.failf
                  "seed %d: matrix %b <> per-query %b on (%d, %d)" seed a b t1
                  t2))
        [ Tbaa.Sm_type_refs.Grouped; Tbaa.Sm_type_refs.Per_type ])
    seeds

(* --- the Engine facade -------------------------------------------------- *)

let test_engine_matches_direct_constructors () =
  List.iter
    (fun seed ->
      let program = lower_gen seed in
      let engine = Tbaa.Engine.create program in
      let facts = Tbaa.Engine.facts engine in
      let refs = paths_of facts in
      (* This differential test is exactly the reason the deprecated raw
         constructors still exist: it checks the engine against them. *)
      let direct =
        [ (Tbaa.Type_decl.oracle [@alert "-deprecated"])
            ~facts ~world:Tbaa.World.Closed;
          (Tbaa.Field_type_decl.oracle [@alert "-deprecated"])
            ~facts ~world:Tbaa.World.Closed;
          (Tbaa.Sm_type_refs.oracle [@alert "-deprecated"])
            ~facts ~world:Tbaa.World.Closed () ]
      in
      List.iter2
        (fun (o : Tbaa.Oracle.t) (d : Tbaa.Oracle.t) ->
          Alcotest.(check string) "oracle name" d.Tbaa.Oracle.name
            o.Tbaa.Oracle.name;
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  if
                    not
                      (Bool.equal
                         (o.Tbaa.Oracle.may_alias p q)
                         (d.Tbaa.Oracle.may_alias p q))
                  then
                    Alcotest.failf "seed %d: %s engine/direct disagree: %s %s"
                      seed o.Tbaa.Oracle.name (Apath.to_string p)
                      (Apath.to_string q))
                refs)
            refs)
        (Tbaa.Engine.oracles engine)
        direct)
    seeds

let test_engine_cached_and_counters () =
  let program = lower_gen 7 in
  let engine = Tbaa.Engine.create program in
  let refs = paths_of (Tbaa.Engine.facts engine) in
  let raw = Tbaa.Engine.oracle engine Tbaa.Engine.Sm_field_type_refs in
  let cached = Tbaa.Engine.cached engine Tbaa.Engine.Sm_field_type_refs in
  Alcotest.(check bool) "cached handle is memoized per kind" true
    (cached == Tbaa.Engine.cached engine Tbaa.Engine.Sm_field_type_refs);
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          Alcotest.(check bool) "cached = raw"
            (raw.Tbaa.Oracle.may_alias p q)
            (cached.Tbaa.Oracle.may_alias p q))
        refs)
    refs;
  let c = Tbaa.Engine.counters engine in
  Alcotest.(check int) "hits + misses = queries"
    (Tbaa.Oracle_cache.queries c)
    (Tbaa.Oracle_cache.hits c + Tbaa.Oracle_cache.misses c);
  if refs <> [] then
    Alcotest.(check bool) "some queries were counted" true
      (Tbaa.Oracle_cache.queries c > 0)

let test_engine_stats_shape () =
  let program = lower_gen 4 in
  let engine = Tbaa.Engine.create program in
  ignore
    ((Tbaa.Engine.cached engine Tbaa.Engine.Type_decl).Tbaa.Oracle.compat
       Minim3.Types.tid_int Minim3.Types.tid_int);
  let keys =
    match Tbaa.Engine.stats engine with
    | Support.Json.Obj kvs -> List.map fst kvs
    | _ -> []
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "stats has %S" k) true
        (List.mem k keys))
    [ "world"; "variant"; "types"; "build_ms"; "queries"; "hits"; "misses";
      "hit_rate"; "paths_interned"; "alocs_interned" ];
  let t = Tbaa.Engine.timings engine in
  Alcotest.(check bool) "timings are non-negative" true
    (t.Tbaa.Engine.facts_ms >= 0.
    && t.Tbaa.Engine.type_decl_ms >= 0.
    && t.Tbaa.Engine.field_type_decl_ms >= 0.
    && t.Tbaa.Engine.sm_ms >= 0.);
  List.iter
    (fun (o : Tbaa.Oracle.t) ->
      match o.Tbaa.Oracle.stats () with
      | Support.Json.Obj kvs ->
        Alcotest.(check bool)
          (o.Tbaa.Oracle.name ^ " stats names itself")
          true
          (List.mem_assoc "oracle" kvs)
      | _ -> Alcotest.failf "%s: stats is not an object" o.Tbaa.Oracle.name)
    (Tbaa.Engine.oracles engine)

let () =
  Alcotest.run "engine"
    [ ( "hash-consing",
        [ Alcotest.test_case "physical = structural equality" `Quick
            test_hashcons_physical_eq;
          Alcotest.test_case "extend re-interns shared spines" `Quick
            test_hashcons_extend_sharing ] );
      ( "compat cores",
        [ Alcotest.test_case "interval subtyping = reference" `Quick
            test_subtyping_matches_reference;
          Alcotest.test_case "TypeRefs matrix = per-query intersection" `Quick
            test_type_refs_matrix_matches_reference ] );
      ( "engine facade",
        [ Alcotest.test_case "oracles = direct constructors" `Quick
            test_engine_matches_direct_constructors;
          Alcotest.test_case "cached handles and shared counters" `Quick
            test_engine_cached_and_counters;
          Alcotest.test_case "stats surface" `Quick test_engine_stats_shape ] )
    ]
