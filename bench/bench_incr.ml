(* The incremental-engine benchmark and its regression gate.

   Times three ways of obtaining a full analysis (facts, oracles, and the
   SMFieldTypeRefs merged mod-ref views) of the scaleN corpus
   (Gen.Scale, N = 1200 worker procedures):

   - cold:     Engine.create ~domains:1 from scratch;
   - warm:     edit one procedure body in place (toggle an integer
               constant — changes the fingerprint, preserves the
               procedure's canonical oracle inputs), then Engine.update;
   - parallel: Engine.create ~domains:(all available) from scratch.

   Gates (ratios, not raw times, so the gate is meaningful across
   machines):
   - warm/cold: a single-procedure edit must re-analyze >= 10x faster
     than from scratch;
   - parallel/cold: >= 2x — checked only when the machine actually has
     >= 4 domains to offer, otherwise reported as skipped.

   Wall-clock time, not CPU time: the parallel leg burns CPU seconds on
   every domain; Sys.time would sum them and hide the win.

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_incr.json
     --check   the `make bench-smoke` gate: required ratios above, plus
               each leg within 20% of its recorded speedup when
               BENCH_incr.json exists.

   Every run also asserts that the updated engine agrees with a fresh
   from-scratch analysis (facts sizes, merged mod-ref views, sampled
   may-alias answers) — the cheap in-bench version of the differential
   suite in test_incr. *)

open Support

let snapshot_file = "BENCH_incr.json"
let required_warm_speedup = 10.0
let required_par_speedup = 2.0
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)
let procs = 1200
let sm = Tbaa.Engine.Sm_field_type_refs

let lower () = Ir.Lower.lower_string ~file:"scale" (Gen.Scale.source procs)

(* Pull every lazily built piece a client could ask for, so each timed
   leg covers the same total work. *)
let force engine =
  List.iter
    (fun p ->
      ignore (Tbaa.Engine.modref_merged engine sm p.Ir.Cfg.pr_name))
    (Tbaa.Engine.program engine).Ir.Cfg.prog_procs

let now = Unix.gettimeofday

let time_ns ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    f ();
    let dt = (now () -. t0) *. 1e9 in
    if dt < !best then best := dt
  done;
  !best

(* Toggle the first integer constant in an ALU assignment of [proc] —
   the canonical "edit one procedure" probe. *)
let toggle_const proc =
  let toggled = ref false in
  Vec.iter
    (fun b ->
      if not !toggled then
        b.Ir.Cfg.b_instrs <-
          List.map
            (function
              | Ir.Instr.Iassign (v, Ir.Instr.Rbinop (op, a, Ir.Reg.Aint k))
                when not !toggled ->
                toggled := true;
                Ir.Instr.Iassign
                  (v, Ir.Instr.Rbinop (op, a, Ir.Reg.Aint (k + 1)))
              | i -> i)
            b.Ir.Cfg.b_instrs)
    proc.Ir.Cfg.pr_blocks;
  if not !toggled then failwith "bench_incr: no constant to toggle"

let edited_proc program =
  let name = Ident.intern (Printf.sprintf "P%d" (procs / 2)) in
  match Ir.Cfg.find_proc_opt program name with
  | Some p -> p
  | None -> failwith "bench_incr: edited procedure not found"

(* ------------------------------------------------------------------ *)
(* Legs                                                                *)
(* ------------------------------------------------------------------ *)

type leg = {
  leg_name : string;
  leg_required : float;
  old_ns : float;
  new_ns : float;
}

let speedup l = if l.new_ns > 0. then l.old_ns /. l.new_ns else 0.

let cold_ns program =
  time_ns (fun () -> force (Tbaa.Engine.create ~domains:1 program))

let warm_leg program cold =
  let engine = Tbaa.Engine.create ~domains:1 program in
  force engine;
  let proc = edited_proc program in
  let warm =
    time_ns ~reps:5 (fun () ->
        toggle_const proc;
        force (Tbaa.Engine.update engine program))
  in
  (* The updated engine must agree with a from-scratch analysis of the
     now-edited program. *)
  let fresh = Tbaa.Engine.create ~domains:1 program in
  force fresh;
  let facts_u = Tbaa.Engine.facts engine and facts_f = Tbaa.Engine.facts fresh in
  assert (
    List.length facts_u.Tbaa.Facts.assignments
    = List.length facts_f.Tbaa.Facts.assignments);
  assert (
    List.length facts_u.Tbaa.Facts.memrefs
    = List.length facts_f.Tbaa.Facts.memrefs);
  List.iter
    (fun p ->
      let name = p.Ir.Cfg.pr_name in
      assert (
        Tbaa.Effects.equal
          (Tbaa.Engine.modref_merged engine sm name)
          (Tbaa.Engine.modref_merged fresh sm name)))
    program.Ir.Cfg.prog_procs;
  (match Tbaa.Engine.last_update engine with
  | Some r ->
    assert (not r.Tbaa.Engine.ur_oracles_rebuilt);
    assert (List.length r.Tbaa.Engine.ur_recomputed = 1)
  | None -> assert false);
  { leg_name = "warm-edit-one-proc";
    leg_required = required_warm_speedup;
    old_ns = cold;
    new_ns = warm }

let parallel_leg program cold =
  let domains = Domain_pool.available () in
  if domains < 4 then begin
    Printf.printf
      "(parallel-cold: skipped, only %d domain%s available — gate needs 4)\n"
      domains
      (if domains = 1 then "" else "s");
    None
  end
  else begin
    let par =
      time_ns (fun () -> force (Tbaa.Engine.create ~domains program))
    in
    Some
      { leg_name = "parallel-cold";
        leg_required = required_par_speedup;
        old_ns = cold;
        new_ns = par }
  end

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run legs =
  Json.Obj
    [ ("microbench", Json.String "incremental-engine");
      ("procs", Json.Int procs);
      ( "legs",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [ ("name", Json.String l.leg_name);
                   ("old_ns", Json.Float l.old_ns);
                   ("new_ns", Json.Float l.new_ns);
                   ("required", Json.Float l.leg_required);
                   ("speedup", Json.Float (speedup l)) ])
             legs) ) ]

let print_table legs =
  Printf.printf "%-24s %14s %14s %10s %10s\n" "leg" "cold ms" "leg ms"
    "speedup" "required";
  List.iter
    (fun l ->
      Printf.printf "%-24s %14.1f %14.1f %9.1fx %9.1fx\n" l.leg_name
        (l.old_ns /. 1e6) (l.new_ns /. 1e6) (speedup l) l.leg_required)
    legs

let recorded_speedups () =
  if not (Sys.file_exists snapshot_file) then []
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List legs) ->
      List.filter_map
        (fun leg ->
          match (Json.member "name" leg, Json.member "speedup" leg) with
          | Some (Json.String name), Some v -> (
            match Json.to_float v with
            | Some s -> Some (name, s)
            | None -> None)
          | _ -> None)
        legs
    | _ -> []

let check legs =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun l ->
      if speedup l < l.leg_required then
        fail "%s: speedup %.1fx below required %.1fx" l.leg_name (speedup l)
          l.leg_required)
    legs;
  let recorded = recorded_speedups () in
  if recorded = [] then
    print_endline
      "(no BENCH_incr.json snapshot; gating on the required floors only)"
  else
    List.iter
      (fun l ->
        match List.assoc_opt l.leg_name recorded with
        | None -> ()  (* e.g. snapshot from a wider machine *)
        | Some r ->
          if speedup l < r *. regression_slack then
            fail
              "%s: speedup %.1fx regressed more than 20%% from recorded %.1fx"
              l.leg_name (speedup l) r)
      legs;
  match !failures with
  | [] -> print_endline "bench-smoke: all legs within bounds"
  | fs ->
    List.iter (fun m -> prerr_endline ("bench-smoke FAIL: " ^ m)) fs;
    exit 1

let () =
  let arg a = Array.exists (String.equal a) Sys.argv in
  let program = lower () in
  let cold = cold_ns program in
  let legs =
    (warm_leg program cold :: Option.to_list (parallel_leg program cold))
  in
  print_table legs;
  if arg "--write" then begin
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string (json_of_run legs));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(snapshot written to %s)\n" snapshot_file
  end;
  if arg "--check" then check legs
