(* The simulator microbenchmark and its regression gate.

   PR 5 rebuilt the interpreter's inner loop around per-procedure
   pre-compilation (Sim.Precompile): dense register renumbering onto flat
   frames, blocks resolved into instruction arrays with precomputed layout
   offsets, and per-static-site memo cells in place of the hashed site
   table. This benchmark times the tree-walking reference engine
   ([Sim.Interp.run_reference]) against the compiled engine
   ([Sim.Interp.run]) over identical workloads:

   - table4:simulate-slisp — an untraced run of slisp, the suite's most
     interpreter-bound program (the Table 4 instruction-count
     configuration); and
   - fig9:traced-run-write_pickle — a run of write_pickle under the
     Sim.Limit redundant-load tracer (the Figure 9 limit-study
     configuration), where the hot path also pays the on_load hook.

   Both engines must produce bit-identical outcomes — checked here on
   every timed run, so the benchmark doubles as a coarse equivalence
   test (the fine-grained one is test/test_sim_equiv.ml).

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_sim.json
     --check   the `make bench-smoke` gate: every leg's speedup must be
               >= 3x, and — if BENCH_sim.json exists — within 20% of its
               recorded speedup. Gating on old/new *ratios* rather than
               raw ns keeps the gate meaningful across machines of
               different absolute speed. *)

open Support

let snapshot_file = "BENCH_sim.json"
let required_speedup = 3.0
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)

(* ------------------------------------------------------------------ *)
(* Subjects                                                            *)
(* ------------------------------------------------------------------ *)

let workload name = Workloads.Workload.lower (Workloads.Suite.find name)

(* The observable fingerprint both engines must agree on, folded into the
   sink so the runs cannot be optimized away. *)
let fingerprint (o : Sim.Interp.outcome) =
  Hashtbl.hash
    ( o.Sim.Interp.output,
      o.Sim.Interp.counters.Sim.Interp.instrs,
      o.Sim.Interp.counters.Sim.Interp.heap_loads,
      o.Sim.Interp.cycles,
      o.Sim.Interp.soft_faults,
      o.Sim.Interp.cache_misses )

let sink = ref 0

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(* Whole-program runs are long (tens of millions of simulated cycles).
   After a warmup run, size a batch to >= 0.3s of CPU time, then take the
   MINIMUM over several batches: the container this gate runs in shows
   1.5x CPU-time noise (frequency scaling / cgroup throttling), and the
   minimum is the standard robust estimator under one-sided noise. *)
let ns_per_run f =
  sink := !sink lxor f ();
  (* warmup; also seeds the equality check *)
  let time iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      sink := !sink lxor f ()
    done;
    (Sys.time () -. t0) *. 1e9 /. float_of_int iters
  in
  let rec calibrate iters =
    let per = time iters in
    if per *. float_of_int iters < 0.3e9 && iters < 1 lsl 10 then
      calibrate (iters * 2)
    else (iters, per)
  in
  let iters, first = calibrate 1 in
  let best = ref first in
  for _ = 1 to 4 do
    best := Float.min !best (time iters)
  done;
  !best

type leg = {
  leg_name : string;
  leg_instrs : int;  (* simulated instructions per run *)
  old_ns : float;
  new_ns : float;
}

let speedup l = if l.new_ns > 0. then l.old_ns /. l.new_ns else 0.

let geomean legs =
  let logs = List.map (fun l -> Float.log (Float.max (speedup l) 1e-9)) legs in
  Float.exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length legs))

(* [make_leg name program runner] times [runner ~reference:_ program] both
   ways and insists the two engines' observables are identical. *)
let make_leg leg_name program runner =
  let outcome_of reference = runner ~reference program in
  let old_o = outcome_of true in
  let new_o = outcome_of false in
  if fingerprint old_o <> fingerprint new_o then begin
    Printf.eprintf "%s: engines disagree (reference vs compiled)!\n" leg_name;
    exit 2
  end;
  { leg_name;
    leg_instrs = new_o.Sim.Interp.counters.Sim.Interp.instrs;
    old_ns = ns_per_run (fun () -> fingerprint (outcome_of true));
    new_ns = ns_per_run (fun () -> fingerprint (outcome_of false)) }

let untraced ~reference program =
  if reference then Sim.Interp.run_reference program
  else Sim.Interp.run program

let traced ~reference program =
  let t = Sim.Limit.create () in
  let on_load = Sim.Limit.on_load t in
  let o =
    if reference then Sim.Interp.run_reference ~on_load program
    else Sim.Interp.run ~on_load program
  in
  (* fold the tracer's totals into the sink too: the traced leg must
     exercise the real hook, not a stub *)
  sink := !sink lxor Sim.Limit.total_redundant t;
  o

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run legs =
  Json.envelope
    [ ("microbench", Json.String "simulator-fast-path");
      ( "legs",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [ ("name", Json.String l.leg_name);
                   ("instrs", Json.Int l.leg_instrs);
                   ("old_ns_per_run", Json.Float l.old_ns);
                   ("new_ns_per_run", Json.Float l.new_ns);
                   ("speedup", Json.Float (speedup l)) ])
             legs) );
      ( "speedup_min",
        Json.Float
          (List.fold_left (fun acc l -> Float.min acc (speedup l)) infinity
             legs) );
      ("speedup_geomean", Json.Float (geomean legs)) ]

let print_table legs =
  Printf.printf "%-30s %14s %14s %10s\n" "leg" "old ns/run" "new ns/run"
    "speedup";
  List.iter
    (fun l ->
      Printf.printf "%-30s %14.0f %14.0f %9.1fx\n" l.leg_name l.old_ns
        l.new_ns (speedup l))
    legs

let recorded_speedups () =
  if not (Sys.file_exists snapshot_file) then []
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List legs) ->
      List.filter_map
        (fun leg ->
          match (Json.member "name" leg, Json.member "speedup" leg) with
          | Some (Json.String name), Some v -> (
            match Json.to_float v with
            | Some s -> Some (name, s)
            | None -> None)
          | _ -> None)
        legs
    | _ -> []

let check legs =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun l ->
      if speedup l < required_speedup then
        fail "%s: speedup %.1fx below required %.1fx" l.leg_name (speedup l)
          required_speedup)
    legs;
  let recorded = recorded_speedups () in
  if recorded = [] then
    print_endline "(no BENCH_sim.json snapshot; gating on the 3x floor only)"
  else
    List.iter
      (fun l ->
        match List.assoc_opt l.leg_name recorded with
        | None -> fail "%s: not present in %s" l.leg_name snapshot_file
        | Some r ->
          if speedup l < r *. regression_slack then
            fail
              "%s: speedup %.1fx regressed more than 20%% from recorded %.1fx"
              l.leg_name (speedup l) r)
      legs;
  match !failures with
  | [] -> print_endline "bench-smoke: all legs within bounds"
  | fs ->
    List.iter (fun m -> prerr_endline ("bench-smoke FAIL: " ^ m)) fs;
    exit 1

let () =
  let arg a = Array.exists (String.equal a) Sys.argv in
  let legs =
    [ make_leg "table4:simulate-slisp" (workload "slisp") untraced;
      make_leg "fig9:traced-run-write_pickle" (workload "write_pickle") traced
    ]
  in
  print_table legs;
  if !sink = max_int then print_newline ();
  if arg "--write" then begin
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string (json_of_run legs));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(snapshot written to %s)\n" snapshot_file
  end;
  if arg "--check" then check legs
