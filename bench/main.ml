(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 4-6, Figures 8-12) plus the ablations — this is the output
   EXPERIMENTS.md records.

   Part 2 measures the cost of the machinery itself with Bechamel: one
   Test.make per table/figure exercising the analysis or optimization that
   produces it, plus the ABL4 scaling series backing the paper's O(n)
   complexity claim for selective type merging (§2.5). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 2 subjects                                                     *)
(* ------------------------------------------------------------------ *)

let workload name = Workloads.Suite.find name
let lowered name = Workloads.Workload.lower (workload name)

(* Synthetic program of [n] list-walking procedures for the scaling series:
   types, globals and instructions all grow linearly with n. *)
let synthetic n =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "MODULE Scale;\nTYPE\n  T0 = OBJECT a: INTEGER; END;\n";
  for i = 1 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  T%d = T%d OBJECT END;\n" i (i - 1))
  done;
  Buffer.add_string buf "VAR\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  g%d: T%d;\n" i i)
  done;
  for i = 0 to n - 1 do
    (* Each procedure allocates, performs one upcast assignment (a merge
       for SMTypeRefs), and touches a field. *)
    Buffer.add_string buf
      (Printf.sprintf
         "PROCEDURE P%d () =\n\
         \  VAR x: INTEGER;\n\
         \  BEGIN\n\
         \    g%d := NEW (T%d);\n\
         \    g%d := g%d;\n\
         \    x := g%d.a;\n\
         \    g%d.a := x + 1;\n\
         \  END P%d;\n"
         i i i (max 0 (i - 1)) i i i i)
  done;
  Buffer.add_string buf "BEGIN\nEND Scale.\n";
  Buffer.contents buf

let tests =
  [ (* Table 4 is interpreter-bound: one simulated run. *)
    Test.make ~name:"table4:simulate-slisp"
      (Staged.stage (fun () -> Sim.Interp.run (lowered "slisp")));
    (* Table 5: the static alias-pair metric on the largest program. *)
    Test.make ~name:"table5:alias-pairs-m3cg"
      (let program = lowered "m3cg" in
       let a = Tbaa.Analysis.analyze program in
       Staged.stage (fun () ->
           Tbaa.Alias_pairs.count a.Tbaa.Analysis.sm_field_type_refs
             a.Tbaa.Analysis.facts));
    (* Table 6 / Figure 8: the optimizer itself. *)
    Test.make ~name:"table6:rle-m3cg"
      (Staged.stage (fun () ->
           let program = lowered "m3cg" in
           let a = Tbaa.Analysis.analyze program in
           Opt.Rle.run program a.Tbaa.Analysis.sm_field_type_refs));
    Test.make ~name:"fig8:prepare-format"
      (Staged.stage (fun () ->
           Harness.Runner.prepare (workload "format")
             (Harness.Runner.rle_with Opt.Pipeline.Osm_field_type_refs)));
    (* Figures 9-10: the traced (limit-study) run. *)
    Test.make ~name:"fig9:traced-run-write_pickle"
      (Staged.stage (fun () ->
           let program = lowered "write_pickle" in
           let tracer = Sim.Limit.create () in
           Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program));
    (* Figure 11: devirtualization + inlining. *)
    Test.make ~name:"fig11:devirt-inline-ktree"
      (Staged.stage (fun () ->
           let program = lowered "ktree" in
           let a = Tbaa.Analysis.analyze program in
           let _ =
             Opt.Devirt.run program ~type_refs:a.Tbaa.Analysis.type_refs_table
           in
           Opt.Inline.run program));
    (* Figure 12: the open-world analysis. *)
    Test.make ~name:"fig12:analyze-open-m3cg"
      (let program = lowered "m3cg" in
       Staged.stage (fun () -> Tbaa.Analysis.analyze ~world:Tbaa.World.Open program));
    (* ABL1: the two merge formulations (paper footnote 2). *)
    Test.make ~name:"abl1:merge-grouped-m3cg"
      (let facts = Tbaa.Facts.collect (lowered "m3cg") in
       Staged.stage (fun () ->
           Tbaa.Sm_type_refs.build ~variant:Tbaa.Sm_type_refs.Grouped ~facts
             ~world:Tbaa.World.Closed ()));
    Test.make ~name:"abl1:merge-per-type-m3cg"
      (let facts = Tbaa.Facts.collect (lowered "m3cg") in
       Staged.stage (fun () ->
           Tbaa.Sm_type_refs.build ~variant:Tbaa.Sm_type_refs.Per_type ~facts
             ~world:Tbaa.World.Closed ())) ]
  @ (* ABL4: facts collection + merging over growing synthetic programs —
       time per size should grow roughly linearly (the §2.5 claim). *)
  List.map
    (fun n ->
      let program = Ir.Lower.lower_string ~file:"scale" (synthetic n) in
      Test.make ~name:(Printf.sprintf "abl4:analyze-n%d" n)
        (Staged.stage (fun () -> Tbaa.Analysis.analyze program)))
    [ 25; 50; 100; 200 ]

(* ------------------------------------------------------------------ *)
(* Pass-manager instrumentation sweep                                  *)
(* ------------------------------------------------------------------ *)

(* One JSON-lines record per (workload, config, pass) when --stats is
   given; always a summary table of oracle-cache effectiveness, and a
   BENCH_passmgr.json snapshot for cross-run comparison. *)

let stats_mode = Array.exists (String.equal "--stats") Sys.argv

let sweep_configs =
  [ Harness.Runner.rle_with Opt.Pipeline.Osm_field_type_refs;
    { (Harness.Runner.rle_with Opt.Pipeline.Osm_field_type_refs) with
      Harness.Runner.minv = true };
    { (Harness.Runner.rle_with Opt.Pipeline.Osm_field_type_refs) with
      Harness.Runner.copyprop = true } ]

let pass_manager_sweep () =
  print_endline "\n=== Pass-manager instrumentation (oracle cache) ===\n";
  Printf.printf "%-14s %-16s %8s %8s %9s %9s\n" "workload" "config" "queries"
    "hits" "hit rate" "time ms";
  print_endline (String.make 70 '-');
  let records = ref [] in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun config ->
          let cname = Harness.Runner.config_name config in
          let reports = Harness.Runner.reports w config in
          let extra =
            [ ("workload", Support.Json.String w.Workloads.Workload.name);
              ("config", Support.Json.String cname) ]
          in
          List.iter
            (fun r ->
              let j = Opt.Pass.report_to_json ~extra r in
              records := j :: !records;
              if stats_mode then print_endline (Support.Json.to_string j))
            reports;
          let c = Opt.Pass_manager.oracle_counters reports in
          Printf.printf "%-14s %-16s %8d %8d %8.1f%% %9.2f\n"
            w.Workloads.Workload.name cname (Tbaa.Oracle_cache.queries c)
            (Tbaa.Oracle_cache.hits c)
            (100.0 *. Tbaa.Oracle_cache.hit_rate c)
            (Opt.Pass_manager.total_time_ms reports))
        sweep_configs)
    Workloads.Suite.dynamic;
  let oc = open_out "BENCH_passmgr.json" in
  output_string oc
    (Support.Json.to_string
       (Support.Json.Obj [ ("records", Support.Json.List (List.rev !records)) ]));
  output_string oc "\n";
  close_out oc;
  print_endline "\n(per-pass records written to BENCH_passmgr.json)"

(* ------------------------------------------------------------------ *)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  Printf.printf "%-34s %14s %10s\n" "benchmark" "ns/run" "r^2";
  print_endline (String.make 60 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          Printf.printf "%-34s %14.0f %10.4f\n%!" name estimate r2)
        analyzed)
    tests

let () =
  (* Part 1: regenerate every table and figure. *)
  Harness.Experiments.run_all Format.std_formatter;
  (* Part 2: per-pass instrumentation and oracle-cache effectiveness. *)
  pass_manager_sweep ();
  (* Part 3: time the machinery. *)
  print_endline "\n=== Bechamel micro-benchmarks (one per table/figure) ===\n";
  run_bechamel ()
