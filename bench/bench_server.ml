(* The daemon throughput benchmark, its load generator, and the
   regression gate behind `make bench-smoke`.

   Two ways of answering the same batched may-alias queries over the
   scaleN corpus, both through the real tbaad binary over pipes so they
   share every byte of the protocol path:

   - fork-per-batch: every batch pays a fresh process — spawn tbaad,
     open the document (parse + typecheck + lower + engine build),
     answer one batch, shut down. The pre-daemon workflow.
   - warm: one long-lived daemon, the document opened once, then many
     batches against the persistent engine.

   Gate (a ratio, so it is meaningful across machines): the warm daemon
   must answer >= 5x more queries per second than fork-per-batch, and
   stay within 20% of the speedup recorded in BENCH_server.json.

   The client half doubles as the load generator: every request goes
   through [call], which retries Overloaded responses with exponential
   backoff plus deterministic jitter. A burst leg fires more
   concurrent-in-flight requests than the daemon's pending queue allows,
   asserts the overflow was shed with structured responses (not stalls,
   not crashes), and that retries eventually land every request.

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_server.json
     --check   the `make bench-smoke` gate *)

open Support

let snapshot_file = "BENCH_server.json"
let required_speedup = 5.0
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)
let procs = 120
let batch_pairs = 500
let warm_batches = 20
let fork_trials = 3

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Daemon over pipes                                                   *)
(* ------------------------------------------------------------------ *)

let daemon_exe =
  let candidates =
    [ "../bin/tbaad.exe"; "_build/default/bin/tbaad.exe"; "bin/tbaad.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> failwith "bench_server: tbaad.exe not found (run dune build bin)"

type daemon = {
  pid : int;
  ic : in_channel;
  oc : out_channel;
  rng : Prng.t;
  mutable shed_seen : int;
  mutable retries : int;
}

let spawn ?(args = []) () =
  let child_in_r, child_in_w = Unix.pipe ~cloexec:false () in
  let child_out_r, child_out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process daemon_exe
      (Array.of_list (daemon_exe :: args))
      child_in_r child_out_w Unix.stderr
  in
  Unix.close child_in_r;
  Unix.close child_out_w;
  { pid;
    ic = Unix.in_channel_of_descr child_out_r;
    oc = Unix.out_channel_of_descr child_in_w;
    rng = Prng.create 0xb0ffL;
    shed_seen = 0;
    retries = 0 }

let send d line =
  output_string d.oc line;
  output_char d.oc '\n';
  flush d.oc

let recv d = Json.of_string (input_line d.ic)

let stop d =
  send d "{\"jsonrpc\":\"2.0\",\"id\":0,\"method\":\"shutdown\"}";
  ignore (recv d);
  close_out_noerr d.oc;
  close_in_noerr d.ic;
  ignore (Unix.waitpid [] d.pid)

let is_overloaded resp =
  match Json.member "error" resp with
  | Some err -> Json.member "code" err = Some (Json.Int (-32001))
  | None -> false

(* The load generator's one verb: send, and on an Overloaded shed retry
   with exponential backoff and jitter so synchronized clients spread
   out instead of stampeding back in step. *)
let call ?(max_tries = 8) d line =
  let rec go tries delay =
    send d line;
    let resp = recv d in
    if is_overloaded resp && tries < max_tries then begin
      d.retries <- d.retries + 1;
      let jitter =
        delay *. 0.5 *. (float_of_int (Prng.int d.rng 1000) /. 1000.0)
      in
      Unix.sleepf (delay +. jitter);
      go (tries + 1) (delay *. 2.0)
    end
    else resp
  in
  go 1 0.001

let expect_result what resp =
  match Json.member "result" resp with
  | Some r -> r
  | None ->
    failwith
      (Printf.sprintf "bench_server: %s failed: %s" what
         (Json.to_string resp))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let source = lazy (Gen.Scale.source procs)

let open_req =
  lazy
    (Json.to_string
       (Json.Obj
          [ ("jsonrpc", Json.String "2.0"); ("id", Json.Int 1);
            ("method", Json.String "open");
            ( "params",
              Json.Obj
                [ ("name", Json.String "scale");
                  ("source", Json.String (Lazy.force source)) ] ) ]))

let open_doc d =
  let result = expect_result "open" (call d (Lazy.force open_req)) in
  match Json.member "memrefs" result with
  | Some (Json.Int n) when n > 0 -> n
  | _ -> failwith "bench_server: open returned no memrefs"

let alias_req rng n =
  let pairs =
    List.init batch_pairs (fun _ ->
        Json.List [ Json.Int (Prng.int rng n); Json.Int (Prng.int rng n) ])
  in
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.String "2.0"); ("id", Json.Int 2);
         ("method", Json.String "alias");
         ( "params",
           Json.Obj
             [ ("doc", Json.String "scale"); ("pairs", Json.List pairs) ] )
       ])

let run_batch d req =
  let result = expect_result "alias" (call d req) in
  match Json.member "answers" result with
  | Some (Json.List answers) -> List.length answers
  | _ -> failwith "bench_server: alias returned no answers"

(* ------------------------------------------------------------------ *)
(* Legs                                                                *)
(* ------------------------------------------------------------------ *)

let fork_leg () =
  let rng = Prng.create 0xf02cL in
  let best = ref infinity in
  let answered = ref 0 in
  for _ = 1 to fork_trials do
    let t0 = now () in
    let d = spawn () in
    let n = open_doc d in
    answered := run_batch d (alias_req rng n);
    stop d;
    let dt = now () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int !answered /. !best

let warm_leg () =
  let rng = Prng.create 0x3a3aL in
  let d = spawn () in
  let n = open_doc d in
  (* One untimed batch to warm the memoized oracle handles. *)
  ignore (run_batch d (alias_req rng n));
  let answered = ref 0 in
  let t0 = now () in
  for _ = 1 to warm_batches do
    answered := !answered + run_batch d (alias_req rng n)
  done;
  let dt = now () -. t0 in
  stop d;
  float_of_int !answered /. dt

(* Overrun the pending queue on purpose; every overflow must come back
   as a structured shed, and backoff retries must land all of them. *)
let burst_leg () =
  let max_pending = 8 in
  let d = spawn ~args:[ "--max-pending"; string_of_int max_pending ] () in
  let burst = (3 * max_pending) + 4 in
  for i = 1 to burst do
    send d
      (Printf.sprintf "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"ping\"}" i)
  done;
  let served = ref 0 in
  for _ = 1 to burst do
    let resp = recv d in
    if is_overloaded resp then d.shed_seen <- d.shed_seen + 1
    else begin
      ignore (expect_result "ping" resp);
      incr served
    end
  done;
  (* Retry exactly the shed requests through the backoff path. *)
  for i = 1 to d.shed_seen do
    ignore
      (expect_result "ping retry"
         (call d
            (Printf.sprintf
               "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"ping\"}" (-i))));
    incr served
  done;
  stop d;
  if d.shed_seen = 0 then
    failwith "bench_server: burst never overran the pending queue";
  if !served <> burst then
    failwith
      (Printf.sprintf "bench_server: burst lost requests (%d of %d served)"
         !served burst);
  (burst, d.shed_seen)

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run ~fork_qps ~warm_qps ~burst ~shed =
  Json.envelope
    [ ("microbench", Json.String "server");
      ("procs", Json.Int procs);
      ("batch_pairs", Json.Int batch_pairs);
      ( "legs",
        Json.List
          [ Json.Obj
              [ ("name", Json.String "warm-vs-fork");
                ("fork_qps", Json.Float fork_qps);
                ("warm_qps", Json.Float warm_qps);
                ("required", Json.Float required_speedup);
                ("speedup", Json.Float (warm_qps /. fork_qps)) ] ] );
      ( "burst",
        Json.Obj [ ("requests", Json.Int burst); ("shed", Json.Int shed) ]
      ) ]

let recorded_speedup () =
  if not (Sys.file_exists snapshot_file) then None
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List (leg :: _)) -> (
      match Json.member "speedup" leg with
      | Some v -> Json.to_float v
      | None -> None)
    | _ -> None

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  let fork_qps = fork_leg () in
  let warm_qps = warm_leg () in
  let burst, shed = burst_leg () in
  let speedup = warm_qps /. fork_qps in
  Printf.printf "%-16s %14s %14s %10s %10s\n" "leg" "fork qps" "warm qps"
    "speedup" "required";
  Printf.printf "%-16s %14.0f %14.0f %9.1fx %9.1fx\n" "warm-vs-fork"
    fork_qps warm_qps speedup required_speedup;
  Printf.printf "burst: %d requests against max-pending 8, %d shed, all \
                 served after backoff\n"
    burst shed;
  let run_json = json_of_run ~fork_qps ~warm_qps ~burst ~shed in
  (match mode with
  | "--write" ->
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string run_json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" snapshot_file
  | "--check" ->
    let failures = ref [] in
    let fail fmt =
      Printf.ksprintf (fun m -> failures := m :: !failures) fmt
    in
    if speedup < required_speedup then
      fail "warm-vs-fork: speedup %.1fx below required %.1fx" speedup
        required_speedup;
    (match recorded_speedup () with
    | None ->
      print_endline
        "(no BENCH_server.json snapshot; gating on the required floor only)"
    | Some recorded ->
      if speedup < recorded *. regression_slack then
        fail "warm-vs-fork: speedup %.1fx regressed below %.0f%% of \
              recorded %.1fx"
          speedup
          (regression_slack *. 100.0)
          recorded);
    if !failures <> [] then begin
      List.iter (fun m -> Printf.printf "FAIL %s\n" m) !failures;
      exit 1
    end;
    print_endline "bench-server gate: OK"
  | _ -> ())
