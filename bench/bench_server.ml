(* The daemon throughput benchmark, its load generator, and the
   regression gate behind `make bench-smoke`.

   Two ways of answering the same batched may-alias queries over the
   scaleN corpus, both through the real tbaad binary over pipes so they
   share every byte of the protocol path:

   - fork-per-batch: every batch pays a fresh process — spawn tbaad,
     open the document (parse + typecheck + lower + engine build),
     answer one batch, shut down. The pre-daemon workflow.
   - warm: one long-lived daemon, the document opened once, then many
     batches against the persistent engine.

   Gate (a ratio, so it is meaningful across machines): the warm daemon
   must answer >= 5x more queries per second than fork-per-batch, and
   stay within 20% of the speedup recorded in BENCH_server.json.

   The client half doubles as the load generator: every request goes
   through [call], which retries Overloaded responses with exponential
   backoff plus deterministic jitter. A burst leg fires more
   concurrent-in-flight requests than the daemon's pending queue allows,
   asserts the overflow was shed with structured responses (not stalls,
   not crashes), and that retries eventually land every request.

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_server.json
     --check   the `make bench-smoke` gate *)

open Support

let snapshot_file = "BENCH_server.json"
let required_speedup = 5.0
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)
let procs = 120
let batch_pairs = 500
let warm_batches = 20
let fork_trials = 3

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Daemon over pipes                                                   *)
(* ------------------------------------------------------------------ *)

let daemon_exe =
  let candidates =
    [ "../bin/tbaad.exe"; "_build/default/bin/tbaad.exe"; "bin/tbaad.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> failwith "bench_server: tbaad.exe not found (run dune build bin)"

type daemon = {
  pid : int;
  ic : in_channel;
  oc : out_channel;
  rng : Prng.t;
  mutable shed_seen : int;
  mutable retries : int;
}

let spawn ?(args = []) () =
  let child_in_r, child_in_w = Unix.pipe ~cloexec:false () in
  let child_out_r, child_out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process daemon_exe
      (Array.of_list (daemon_exe :: args))
      child_in_r child_out_w Unix.stderr
  in
  Unix.close child_in_r;
  Unix.close child_out_w;
  { pid;
    ic = Unix.in_channel_of_descr child_out_r;
    oc = Unix.out_channel_of_descr child_in_w;
    rng = Prng.create 0xb0ffL;
    shed_seen = 0;
    retries = 0 }

let send d line =
  output_string d.oc line;
  output_char d.oc '\n';
  flush d.oc

let recv d = Json.of_string (input_line d.ic)

let stop d =
  send d "{\"jsonrpc\":\"2.0\",\"id\":0,\"method\":\"shutdown\"}";
  ignore (recv d);
  close_out_noerr d.oc;
  close_in_noerr d.ic;
  ignore (Unix.waitpid [] d.pid)

let is_overloaded resp =
  match Json.member "error" resp with
  | Some err -> Json.member "code" err = Some (Json.Int (-32001))
  | None -> false

(* The load generator's one verb: send, and on an Overloaded shed retry
   with exponential backoff and jitter so synchronized clients spread
   out instead of stampeding back in step. *)
let call ?(max_tries = 8) d line =
  let rec go tries delay =
    send d line;
    let resp = recv d in
    if is_overloaded resp && tries < max_tries then begin
      d.retries <- d.retries + 1;
      let jitter =
        delay *. 0.5 *. (float_of_int (Prng.int d.rng 1000) /. 1000.0)
      in
      Unix.sleepf (delay +. jitter);
      go (tries + 1) (delay *. 2.0)
    end
    else resp
  in
  go 1 0.001

let expect_result what resp =
  match Json.member "result" resp with
  | Some r -> r
  | None ->
    failwith
      (Printf.sprintf "bench_server: %s failed: %s" what
         (Json.to_string resp))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let source = lazy (Gen.Scale.source procs)

let open_req =
  lazy
    (Json.to_string
       (Json.Obj
          [ ("jsonrpc", Json.String "2.0"); ("id", Json.Int 1);
            ("method", Json.String "open");
            ( "params",
              Json.Obj
                [ ("name", Json.String "scale");
                  ("source", Json.String (Lazy.force source)) ] ) ]))

let open_doc d =
  let result = expect_result "open" (call d (Lazy.force open_req)) in
  match Json.member "memrefs" result with
  | Some (Json.Int n) when n > 0 -> n
  | _ -> failwith "bench_server: open returned no memrefs"

let alias_req rng n =
  let pairs =
    List.init batch_pairs (fun _ ->
        Json.List [ Json.Int (Prng.int rng n); Json.Int (Prng.int rng n) ])
  in
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.String "2.0"); ("id", Json.Int 2);
         ("method", Json.String "alias");
         ( "params",
           Json.Obj
             [ ("doc", Json.String "scale"); ("pairs", Json.List pairs) ] )
       ])

let run_batch d req =
  let result = expect_result "alias" (call d req) in
  match Json.member "answers" result with
  | Some (Json.List answers) -> List.length answers
  | _ -> failwith "bench_server: alias returned no answers"

(* ------------------------------------------------------------------ *)
(* Legs                                                                *)
(* ------------------------------------------------------------------ *)

let fork_leg () =
  let rng = Prng.create 0xf02cL in
  let best = ref infinity in
  let answered = ref 0 in
  for _ = 1 to fork_trials do
    let t0 = now () in
    let d = spawn () in
    let n = open_doc d in
    answered := run_batch d (alias_req rng n);
    stop d;
    let dt = now () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int !answered /. !best

let warm_leg () =
  let rng = Prng.create 0x3a3aL in
  let d = spawn () in
  let n = open_doc d in
  (* One untimed batch to warm the memoized oracle handles. *)
  ignore (run_batch d (alias_req rng n));
  let answered = ref 0 in
  let t0 = now () in
  for _ = 1 to warm_batches do
    answered := !answered + run_batch d (alias_req rng n)
  done;
  let dt = now () -. t0 in
  stop d;
  float_of_int !answered /. dt

(* Overrun the pending queue on purpose; every overflow must come back
   as a structured shed, and backoff retries must land all of them. *)
let burst_leg () =
  let max_pending = 8 in
  let d = spawn ~args:[ "--max-pending"; string_of_int max_pending ] () in
  let burst = (3 * max_pending) + 4 in
  for i = 1 to burst do
    send d
      (Printf.sprintf "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"ping\"}" i)
  done;
  let served = ref 0 in
  for _ = 1 to burst do
    let resp = recv d in
    if is_overloaded resp then d.shed_seen <- d.shed_seen + 1
    else begin
      ignore (expect_result "ping" resp);
      incr served
    end
  done;
  (* Retry exactly the shed requests through the backoff path. *)
  for i = 1 to d.shed_seen do
    ignore
      (expect_result "ping retry"
         (call d
            (Printf.sprintf
               "{\"jsonrpc\":\"2.0\",\"id\":%d,\"method\":\"ping\"}" (-i))));
    incr served
  done;
  stop d;
  if d.shed_seen = 0 then
    failwith "bench_server: burst never overran the pending queue";
  if !served <> burst then
    failwith
      (Printf.sprintf "bench_server: burst lost requests (%d of %d served)"
         !served burst);
  (burst, d.shed_seen)

(* Multi-client leg: the same daemon binary on a unix socket with a
   worker pool, stormed by [mc_clients] concurrent clients. The gate is
   a throughput ratio against the same clients taking turns on one
   connection, so it only measures dispatch concurrency — protocol cost
   and engine cost cancel out. Needs real parallelism to mean anything:
   on fewer than [mc_clients] cores the leg skips with a notice instead
   of recording noise (TBAAD_BENCH_FORCE_MULTI=1 overrides the skip to
   exercise the plumbing; the ratio gate still applies under --check). *)

let mc_clients = 4
let mc_batches = 6
let mc_required = 2.0

type sclient = { sc_fd : Unix.file_descr; sc_ic : in_channel;
                 sc_oc : out_channel }

let sc_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { sc_fd = fd;
    sc_ic = Unix.in_channel_of_descr fd;
    sc_oc = Unix.out_channel_of_descr fd }

let sc_call c line =
  output_string c.sc_oc line;
  output_char c.sc_oc '\n';
  flush c.sc_oc;
  Json.of_string (input_line c.sc_ic)

let sc_close c = try Unix.close c.sc_fd with Unix.Unix_error _ -> ()

let sc_batch c req =
  match Json.member "answers" (expect_result "alias" (sc_call c req)) with
  | Some (Json.List answers) -> List.length answers
  | _ -> failwith "bench_server: alias returned no answers"

let multi_client_leg () =
  let cores = Domain_pool.available () in
  if cores < mc_clients && Sys.getenv_opt "TBAAD_BENCH_FORCE_MULTI" = None then None
  else begin
    let path = Filename.temp_file "tbaad-bench" ".sock" in
    Sys.remove path;
    let d =
      spawn
        ~args:
          [ "--socket"; path; "--workers"; string_of_int mc_clients;
            "--deadline-ms"; "30000" ]
        ()
    in
    let deadline = now () +. 10.0 in
    let rec connect_retry () =
      try sc_connect path
      with Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
        when now () < deadline ->
        Unix.sleepf 0.05;
        connect_retry ()
    in
    let c0 = connect_retry () in
    let n =
      match
        Json.member "memrefs"
          (expect_result "open" (sc_call c0 (Lazy.force open_req)))
      with
      | Some (Json.Int n) when n > 0 -> n
      | _ -> failwith "bench_server: open returned no memrefs"
    in
    (* Warm the per-worker oracle handles before timing anything. *)
    ignore (sc_batch c0 (alias_req (Prng.create 0x7a22L) n));
    (* Serialized baseline: one connection answers every batch in turn. *)
    let serial_rng = Prng.create 0x5e41L in
    let answered = ref 0 in
    let t0 = now () in
    for _ = 1 to mc_clients * mc_batches do
      answered := !answered + sc_batch c0 (alias_req serial_rng n)
    done;
    let serial_qps = float_of_int !answered /. (now () -. t0) in
    (* Concurrent: one connection per client, all storming at once. *)
    let clients =
      Array.init mc_clients (fun _ -> connect_retry ())
    in
    let t0 = now () in
    let doms =
      Array.mapi
        (fun i c ->
          Domain.spawn (fun () ->
              let rng = Prng.create (Int64.of_int (0xc11e47 + i)) in
              let got = ref 0 in
              for _ = 1 to mc_batches do
                got := !got + sc_batch c (alias_req rng n)
              done;
              !got))
        clients
    in
    let conc_answered = Array.fold_left (fun a d -> a + Domain.join d) 0 doms in
    let conc_qps = float_of_int conc_answered /. (now () -. t0) in
    Array.iter sc_close clients;
    ignore (sc_call c0 "{\"jsonrpc\":\"2.0\",\"id\":0,\"method\":\"shutdown\"}");
    sc_close c0;
    ignore (Unix.waitpid [] d.pid);
    close_out_noerr d.oc;
    close_in_noerr d.ic;
    (try Sys.remove path with Sys_error _ -> ());
    Some (serial_qps, conc_qps)
  end

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run ~fork_qps ~warm_qps ~burst ~shed ~multi =
  let multi_leg =
    match multi with
    | None ->
      Json.Obj
        [ ("name", Json.String "multi-client");
          ("skipped", Json.Bool true);
          ( "reason",
            Json.String
              (Printf.sprintf "needs >= %d cores, have %d" mc_clients
                 (Domain_pool.available ())) ) ]
    | Some (serial_qps, conc_qps) ->
      Json.Obj
        [ ("name", Json.String "multi-client");
          ("clients", Json.Int mc_clients);
          ("serial_qps", Json.Float serial_qps);
          ("concurrent_qps", Json.Float conc_qps);
          ("required", Json.Float mc_required);
          ("ratio", Json.Float (conc_qps /. serial_qps)) ]
  in
  Json.envelope
    [ ("microbench", Json.String "server");
      ("procs", Json.Int procs);
      ("batch_pairs", Json.Int batch_pairs);
      ( "legs",
        Json.List
          [ Json.Obj
              [ ("name", Json.String "warm-vs-fork");
                ("fork_qps", Json.Float fork_qps);
                ("warm_qps", Json.Float warm_qps);
                ("required", Json.Float required_speedup);
                ("speedup", Json.Float (warm_qps /. fork_qps)) ];
            multi_leg ] );
      ( "burst",
        Json.Obj [ ("requests", Json.Int burst); ("shed", Json.Int shed) ]
      ) ]

let recorded_speedup () =
  if not (Sys.file_exists snapshot_file) then None
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List (leg :: _)) -> (
      match Json.member "speedup" leg with
      | Some v -> Json.to_float v
      | None -> None)
    | _ -> None

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  let fork_qps = fork_leg () in
  let warm_qps = warm_leg () in
  let burst, shed = burst_leg () in
  let multi = multi_client_leg () in
  let speedup = warm_qps /. fork_qps in
  Printf.printf "%-16s %14s %14s %10s %10s\n" "leg" "fork qps" "warm qps"
    "speedup" "required";
  Printf.printf "%-16s %14.0f %14.0f %9.1fx %9.1fx\n" "warm-vs-fork"
    fork_qps warm_qps speedup required_speedup;
  Printf.printf "burst: %d requests against max-pending 8, %d shed, all \
                 served after backoff\n"
    burst shed;
  (match multi with
  | None ->
    Printf.printf
      "multi-client: SKIPPED (needs >= %d cores, have %d)\n" mc_clients
      (Domain_pool.available ())
  | Some (serial_qps, conc_qps) ->
    Printf.printf
      "multi-client: %d clients, serial %.0f qps, concurrent %.0f qps, \
       ratio %.1fx (required %.1fx)\n"
      mc_clients serial_qps conc_qps (conc_qps /. serial_qps) mc_required);
  let run_json = json_of_run ~fork_qps ~warm_qps ~burst ~shed ~multi in
  (match mode with
  | "--write" ->
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string run_json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" snapshot_file
  | "--check" ->
    let failures = ref [] in
    let fail fmt =
      Printf.ksprintf (fun m -> failures := m :: !failures) fmt
    in
    if speedup < required_speedup then
      fail "warm-vs-fork: speedup %.1fx below required %.1fx" speedup
        required_speedup;
    (match multi with
    | None -> ()
    | Some (serial_qps, conc_qps) ->
      if conc_qps < serial_qps *. mc_required then
        fail "multi-client: ratio %.1fx below required %.1fx"
          (conc_qps /. serial_qps) mc_required);
    (match recorded_speedup () with
    | None ->
      print_endline
        "(no BENCH_server.json snapshot; gating on the required floor only)"
    | Some recorded ->
      if speedup < recorded *. regression_slack then
        fail "warm-vs-fork: speedup %.1fx regressed below %.0f%% of \
              recorded %.1fx"
          speedup
          (regression_slack *. 100.0)
          recorded);
    if !failures <> [] then begin
      List.iter (fun m -> Printf.printf "FAIL %s\n" m) !failures;
      exit 1
    end;
    print_endline "bench-server gate: OK"
  | _ -> ())
