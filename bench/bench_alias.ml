(* The alias-query microbenchmark and its regression gate.

   PR 4 replaced the per-query compatibility cores (subtype chain walking
   for TypeDecl/FieldTypeDecl, a TypeRefsTable copy + intersection for
   SMFieldTypeRefs) with O(1) precomputed cores. This benchmark times both
   implementations over identical query streams:

   - a deep synthetic hierarchy (scale200: 200 single-inheritance object
     types), where the reference cost is proportional to hierarchy depth
     and TypeRefs set size — the regime the rewrite targets; and
   - the m3cg workload, the suite's largest real program.

   It also tracks (new-engine-only) the end-to-end [may_alias] cost over
   every pair of m3cg heap references.

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_alias.json
     --check   the `make bench-smoke` gate: the geometric-mean speedup
               across the legs must be >= 5x, and — if BENCH_alias.json
               exists — each leg must be within 20% of its recorded
               speedup. Gating on old/new *ratios* rather than raw
               ns/query keeps the gate meaningful across machines of
               different absolute speed. *)

open Support

let snapshot_file = "BENCH_alias.json"
let required_speedup = 5.0
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)

(* ------------------------------------------------------------------ *)
(* Subjects                                                            *)
(* ------------------------------------------------------------------ *)

(* A deep single-inheritance chain: reference subtyping walks O(depth)
   supers per query and every TypeRefs set is O(n) types wide. *)
let synthetic n =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "MODULE Scale;\nTYPE\n  T0 = OBJECT a: INTEGER; END;\n";
  for i = 1 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  T%d = T%d OBJECT END;\n" i (i - 1))
  done;
  Buffer.add_string buf "VAR\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  g%d: T%d;\n" i i)
  done;
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "PROCEDURE P%d () =\n\
         \  VAR x: INTEGER;\n\
         \  BEGIN\n\
         \    g%d := NEW (T%d);\n\
         \    g%d := g%d;\n\
         \    x := g%d.a;\n\
         \    g%d.a := x + 1;\n\
         \  END P%d;\n"
         i i i (max 0 (i - 1)) i i i i)
  done;
  Buffer.add_string buf "BEGIN\nEND Scale.\n";
  Ir.Lower.lower_string ~file:"scale" (Buffer.contents buf)

let m3cg () = Workloads.Workload.lower (Workloads.Suite.find "m3cg")

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(* [f ()] runs one full query sweep of [queries] queries; returns CPU
   nanoseconds per query, doubling the iteration count until the sweep
   takes long enough to time reliably. *)
let ns_per_query ~queries f =
  f ();
  (* warmup *)
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.2 && iters < 1 lsl 22 then go (iters * 2)
    else dt *. 1e9 /. float_of_int (iters * queries)
  in
  go 1

(* The accumulator keeps the query results observable so neither sweep can
   be optimized away. *)
let sink = ref 0

let sweep_pairs n fn () =
  for t1 = 0 to n - 1 do
    for t2 = 0 to n - 1 do
      if fn t1 t2 then incr sink
    done
  done

type leg = {
  leg_name : string;
  leg_queries : int;
  old_ns : float;
  new_ns : float;
}

let speedup l = if l.new_ns > 0. then l.old_ns /. l.new_ns else 0.

let geomean legs =
  let logs = List.map (fun l -> Float.log (Float.max (speedup l) 1e-9)) legs in
  Float.exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))

let compat_legs label program =
  let facts = Tbaa.Facts.collect program in
  let tenv = facts.Tbaa.Facts.tenv in
  let n = Minim3.Types.count tenv in
  let queries = n * n in
  let fast = Tbaa.Compat.fn (Tbaa.Compat.subtyping tenv) in
  let slow = Tbaa.Compat.reference_subtyping tenv in
  let subtype_leg =
    { leg_name = "subtype-compat/" ^ label;
      leg_queries = queries;
      old_ns = ns_per_query ~queries (sweep_pairs n slow);
      new_ns = ns_per_query ~queries (sweep_pairs n fast) }
  in
  let sm = Tbaa.Sm_type_refs.build ~facts ~world:Tbaa.World.Closed () in
  let matrix = Tbaa.Compat.fn (Tbaa.Sm_type_refs.compat_matrix sm) in
  let reference = Tbaa.Sm_type_refs.compat sm in
  let typerefs_leg =
    { leg_name = "typerefs-compat/" ^ label;
      leg_queries = queries;
      old_ns = ns_per_query ~queries (sweep_pairs n reference);
      new_ns = ns_per_query ~queries (sweep_pairs n matrix) }
  in
  [ subtype_leg; typerefs_leg ]

(* New-engine-only tracking: every ordered pair of heap references through
   the raw SMFieldTypeRefs handle. *)
let may_alias_tracked label program =
  let engine = Tbaa.Engine.create program in
  let refs =
    List.map
      (fun (r : Tbaa.Facts.memref) -> r.Tbaa.Facts.mr_path)
      (Tbaa.Engine.facts engine).Tbaa.Facts.memrefs
  in
  let refs = Array.of_list refs in
  let o = Tbaa.Engine.oracle engine Tbaa.Engine.Sm_field_type_refs in
  let n = Array.length refs in
  let queries = n * n in
  let f () =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if o.Tbaa.Oracle.may_alias refs.(i) refs.(j) then incr sink
      done
    done
  in
  ("may-alias/" ^ label, queries, ns_per_query ~queries f)

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run legs tracked =
  Json.envelope
    [ ("microbench", Json.String "alias-query-engine");
      ( "legs",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [ ("name", Json.String l.leg_name);
                   ("queries", Json.Int l.leg_queries);
                   ("old_ns_per_query", Json.Float l.old_ns);
                   ("new_ns_per_query", Json.Float l.new_ns);
                   ("speedup", Json.Float (speedup l)) ])
             legs) );
      ( "tracked",
        Json.List
          (List.map
             (fun (name, queries, ns) ->
               Json.Obj
                 [ ("name", Json.String name);
                   ("queries", Json.Int queries);
                   ("ns_per_query", Json.Float ns) ])
             tracked) );
      ( "speedup_min",
        Json.Float
          (List.fold_left (fun acc l -> Float.min acc (speedup l)) infinity
             legs) );
      ("speedup_geomean", Json.Float (geomean legs)) ]

let print_table legs tracked =
  Printf.printf "%-28s %12s %12s %10s\n" "leg" "old ns/q" "new ns/q" "speedup";
  List.iter
    (fun l ->
      Printf.printf "%-28s %12.1f %12.1f %9.1fx\n" l.leg_name l.old_ns l.new_ns
        (speedup l))
    legs;
  List.iter
    (fun (name, _, ns) ->
      Printf.printf "%-28s %12s %12.1f %10s\n" name "-" ns "-")
    tracked

let recorded_speedups () =
  if not (Sys.file_exists snapshot_file) then []
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List legs) ->
      List.filter_map
        (fun leg ->
          match (Json.member "name" leg, Json.member "speedup" leg) with
          | Some (Json.String name), Some v -> (
            match Json.to_float v with
            | Some s -> Some (name, s)
            | None -> None)
          | _ -> None)
        legs
    | _ -> []

let check legs =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if geomean legs < required_speedup then
    fail "geometric-mean speedup %.1fx below required %.1fx" (geomean legs)
      required_speedup;
  let recorded = recorded_speedups () in
  if recorded = [] then
    print_endline "(no BENCH_alias.json snapshot; gating on the 5x floor only)"
  else
    List.iter
      (fun l ->
        match List.assoc_opt l.leg_name recorded with
        | None -> fail "%s: not present in %s" l.leg_name snapshot_file
        | Some r ->
          if speedup l < r *. regression_slack then
            fail "%s: speedup %.1fx regressed more than 20%% from recorded %.1fx"
              l.leg_name (speedup l) r)
      legs;
  match !failures with
  | [] -> print_endline "bench-smoke: all legs within bounds"
  | fs ->
    List.iter (fun m -> prerr_endline ("bench-smoke FAIL: " ^ m)) fs;
    exit 1

let () =
  let arg a = Array.exists (String.equal a) Sys.argv in
  let legs =
    compat_legs "scale200" (synthetic 200) @ compat_legs "m3cg" (m3cg ())
  in
  let tracked = [ may_alias_tracked "m3cg" (m3cg ()) ] in
  print_table legs tracked;
  if !sink = max_int then print_newline ();
  if arg "--write" then begin
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string (json_of_run legs tracked));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(snapshot written to %s)\n" snapshot_file
  end;
  if arg "--check" then check legs
