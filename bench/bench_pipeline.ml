(* The optimizer-pipeline benchmark and its regression gate.

   Times three ways of optimizing the scaleN corpus (Gen.Scale, N = 1200
   worker procedures) through the full per-procedure client set (LICM,
   PRE, SLF, RLE, copy propagation, DSE):

   - cold:     Pass_manager.run with a fresh context, sequential;
   - warm:     one body-local edit (toggle an integer constant in one
               procedure) re-optimized through an incremental
               Pass_manager.session — only the edited procedure and its
               transitive callers re-run, everything else splices its
               memoized result;
   - parallel: Pass_manager.run with jobs = all available domains.

   Each leg optimizes a freshly lowered program (the passes mutate it),
   but lowering happens off the clock: the timers bracket exactly the
   optimizer work, matching what the daemon's document-change path pays
   per revision.

   Gates (ratios, not raw times, so the gate is meaningful across
   machines):
   - warm/cold: a single-procedure edit must re-optimize >= 5x faster
     than from scratch;
   - parallel/cold: >= 1.5x — checked only when the machine actually has
     >= 4 domains to offer, otherwise reported as skipped.

   Modes:
     (none)    run and print the table
     --write   also snapshot BENCH_pipeline.json
     --check   the `make bench-smoke` gate: required ratios above, plus
               each leg within 20% of its recorded speedup when
               BENCH_pipeline.json exists.

   Every run also asserts the incremental result is byte-identical to a
   from-scratch optimization of the same edited program — the cheap
   in-bench version of the differential suite in test_pipeline. *)

open Support

let snapshot_file = "BENCH_pipeline.json"
let required_warm_speedup = 5.0
let required_par_speedup = 1.5
let regression_slack = 0.8 (* accept >= 80% of the recorded speedup *)
let procs = 1200

let config jobs =
  { Opt.Pipeline.oracle_kind = Opt.Pipeline.Osm_field_type_refs;
    world = Tbaa.World.Closed;
    passes =
      { Opt.Pass_manager.Config.none with
        Opt.Pass_manager.Config.licm = true; pre = true; slf = true;
        rle = true; copyprop = true; dse = true };
    jobs }

let schedule = Opt.Pipeline.schedule_of_config (config 1)

let lower () = Ir.Lower.lower_string ~file:"scale" (Gen.Scale.source procs)

let now = Unix.gettimeofday

(* Best of [reps]: [prepare] runs off the clock (lowering a fresh
   program), [f] on it. *)
let best_ns ?(reps = 3) prepare f =
  let best = ref infinity in
  for _ = 1 to reps do
    let x = prepare () in
    let t0 = now () in
    f x;
    let dt = (now () -. t0) *. 1e9 in
    if dt < !best then best := dt
  done;
  !best

(* Bump the first integer constant in an ALU assignment of one mid-
   corpus procedure by [delta] — the canonical "edit one procedure"
   probe. A distinct [delta] per repetition keeps every warm rerun a
   genuine edit relative to the previous one; reusing one delta would
   make later reps byte-identical no-op diffs that splice everything. *)
let toggle_const ~delta program =
  let name = Ident.intern (Printf.sprintf "P%d" (procs / 2)) in
  let proc =
    match Ir.Cfg.find_proc_opt program name with
    | Some p -> p
    | None -> failwith "bench_pipeline: edited procedure not found"
  in
  let toggled = ref false in
  Vec.iter
    (fun b ->
      if not !toggled then
        b.Ir.Cfg.b_instrs <-
          List.map
            (function
              | Ir.Instr.Iassign (v, Ir.Instr.Rbinop (op, a, Ir.Reg.Aint k))
                when not !toggled ->
                toggled := true;
                Ir.Instr.Iassign
                  (v, Ir.Instr.Rbinop (op, a, Ir.Reg.Aint (k + delta)))
              | i -> i)
            b.Ir.Cfg.b_instrs)
    proc.Ir.Cfg.pr_blocks;
  if not !toggled then failwith "bench_pipeline: no constant to toggle"

let run_fresh ~jobs program =
  let ctx = Opt.Pipeline.context_of_config (config jobs) in
  ignore (Opt.Pass_manager.run ctx program schedule)

(* ------------------------------------------------------------------ *)
(* Legs                                                                *)
(* ------------------------------------------------------------------ *)

type leg = {
  leg_name : string;
  leg_required : float;
  old_ns : float;
  new_ns : float;
}

let speedup l = if l.new_ns > 0. then l.old_ns /. l.new_ns else 0.

let cold_ns () = best_ns lower (run_fresh ~jobs:1)

let warm_leg cold =
  let ctx = Opt.Pipeline.context_of_config (config 1) in
  let s = Opt.Pass_manager.session ctx in
  (* Prime the session's memo and gate engine on the unedited corpus. *)
  ignore (Opt.Pass_manager.rerun s (lower ()) schedule);
  let rep = ref 0 in
  let warm =
    best_ns ~reps:5
      (fun () ->
        incr rep;
        let p = lower () in
        toggle_const ~delta:!rep p;
        p)
      (fun p -> ignore (Opt.Pass_manager.rerun s p schedule))
  in
  let reused, reran = Opt.Pass_manager.session_counts s in
  if reused = 0 then failwith "bench_pipeline: warm rerun reused nothing";
  if reran = 0 then failwith "bench_pipeline: warm rerun re-ran nothing";
  (* The incremental result must be byte-identical to a from-scratch
     optimization of the same edited program. *)
  let incr_p = lower () in
  toggle_const ~delta:100 incr_p;
  ignore (Opt.Pass_manager.rerun s incr_p schedule);
  let scratch_p = lower () in
  toggle_const ~delta:100 scratch_p;
  run_fresh ~jobs:1 scratch_p;
  let pp p = Format.asprintf "%a" Ir.Cfg.pp_program p in
  if pp incr_p <> pp scratch_p then
    failwith "bench_pipeline: incremental result differs from from-scratch";
  Printf.printf "(warm rerun: %d procedures spliced, %d re-run)\n" reused reran;
  { leg_name = "warm-edit-one-proc";
    leg_required = required_warm_speedup;
    old_ns = cold;
    new_ns = warm }

let parallel_leg cold =
  let domains = Domain_pool.available () in
  if domains < 4 then begin
    Printf.printf
      "(parallel-cold: skipped, only %d domain%s available — gate needs 4)\n"
      domains
      (if domains = 1 then "" else "s");
    None
  end
  else begin
    let par = best_ns lower (run_fresh ~jobs:domains) in
    Some
      { leg_name = "parallel-cold";
        leg_required = required_par_speedup;
        old_ns = cold;
        new_ns = par }
  end

(* ------------------------------------------------------------------ *)
(* Reporting, snapshotting, gating                                     *)
(* ------------------------------------------------------------------ *)

let json_of_run legs =
  Json.envelope
    [ ("microbench", Json.String "optimizer-pipeline");
      ("procs", Json.Int procs);
      ( "legs",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [ ("name", Json.String l.leg_name);
                   ("old_ns", Json.Float l.old_ns);
                   ("new_ns", Json.Float l.new_ns);
                   ("required", Json.Float l.leg_required);
                   ("speedup", Json.Float (speedup l)) ])
             legs) ) ]

let print_table legs =
  Printf.printf "%-24s %14s %14s %10s %10s\n" "leg" "cold ms" "leg ms"
    "speedup" "required";
  List.iter
    (fun l ->
      Printf.printf "%-24s %14.1f %14.1f %9.1fx %9.1fx\n" l.leg_name
        (l.old_ns /. 1e6) (l.new_ns /. 1e6) (speedup l) l.leg_required)
    legs

let recorded_speedups () =
  if not (Sys.file_exists snapshot_file) then []
  else
    let ic = open_in snapshot_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Json.member "legs" (Json.of_string text) with
    | Some (Json.List legs) ->
      List.filter_map
        (fun leg ->
          match (Json.member "name" leg, Json.member "speedup" leg) with
          | Some (Json.String name), Some v -> (
            match Json.to_float v with
            | Some s -> Some (name, s)
            | None -> None)
          | _ -> None)
        legs
    | _ -> []

let check legs =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun l ->
      if speedup l < l.leg_required then
        fail "%s: speedup %.1fx below required %.1fx" l.leg_name (speedup l)
          l.leg_required)
    legs;
  let recorded = recorded_speedups () in
  if recorded = [] then
    print_endline
      "(no BENCH_pipeline.json snapshot; gating on the required floors only)"
  else
    List.iter
      (fun l ->
        match List.assoc_opt l.leg_name recorded with
        | None -> ()  (* e.g. snapshot from a wider machine *)
        | Some r ->
          if speedup l < r *. regression_slack then
            fail
              "%s: speedup %.1fx regressed more than 20%% from recorded %.1fx"
              l.leg_name (speedup l) r)
      legs;
  match !failures with
  | [] -> print_endline "bench-smoke: all legs within bounds"
  | fs ->
    List.iter (fun m -> prerr_endline ("bench-smoke FAIL: " ^ m)) fs;
    exit 1

let () =
  let arg a = Array.exists (String.equal a) Sys.argv in
  let cold = cold_ns () in
  let legs = warm_leg cold :: Option.to_list (parallel_leg cold) in
  print_table legs;
  if arg "--write" then begin
    let oc = open_out snapshot_file in
    output_string oc (Json.to_string (json_of_run legs));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(snapshot written to %s)\n" snapshot_file
  end;
  if arg "--check" then check legs
