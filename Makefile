.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: everything compiles (including tests and benches), the test
# suite passes, and the optimizer driver runs end to end with structured
# stats on a real workload.
check:
	dune build @all
	dune runtest
	dune exec bin/tbaac.exe -- optimize --workload format --stats

bench:
	dune exec bench/main.exe

clean:
	dune clean
