.PHONY: all build test check audit fuzz bench bench-smoke serve-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: everything compiles (including tests and benches), the test
# suite passes, and the optimizer driver runs end to end with structured
# stats on a real workload.
check:
	dune build @all
	dune runtest
	dune exec bin/tbaac.exe -- optimize --workload format --licm --slf --dse --stats
	dune exec bin/tbaac.exe -- optimize --workload format --licm --slf --dse --jobs 2 --stats
	dune exec bin/tbaac.exe -- fuzz --count 25 --seed 1 --out ""

# The full differential-testing sweep: 200 generated programs through the
# 24-configuration matrix and all four oracles, then a fault-injected run
# that must produce shrunk, replaying counterexamples (the fuzzer testing
# itself). Slower than `check`; run before releases.
fuzz:
	dune exec bin/tbaac.exe -- fuzz --count 200 --seed 1
	dune exec bin/tbaac.exe -- fuzz --count 25 --seed 1 --fault-rate 0.05

# The defense-in-depth gate: the whole workload suite through the guarded
# pipeline (IR validated after every pass) and the simulator under the
# dynamic soundness auditor — once with the paper's RLE configuration,
# once with the LICM/SLF/DSE clients stacked on top, so every client's
# claims are discharged on every dynamic workload. Fails on any
# quarantined pass or any no-alias claim contradicted by a concrete
# execution.
audit:
	dune exec bin/tbaac.exe -- audit
	dune exec bin/tbaac.exe -- audit --licm --slf --dse

bench:
	dune exec bench/main.exe

# Ratio-based regression gates: the alias-query legs must stay >= 5x and
# within 20% of the recorded BENCH_alias.json snapshot; the simulator
# fast-path legs must stay >= 3x and within 20% of BENCH_sim.json; the
# optimizer-pipeline warm-edit leg must stay >= 5x of cold (regenerate
# any snapshot with the same bench's --write flag, e.g.
#   dune exec bench/bench_alias.exe -- --write
#   dune exec bench/bench_pipeline.exe -- --write).
bench-smoke:
	dune exec bench/bench_alias.exe -- --check
	dune exec bench/bench_sim.exe -- --check
	dune exec bench/bench_incr.exe -- --check
	dune exec bench/bench_server.exe -- --check
	dune exec bench/bench_pipeline.exe -- --check

# The daemon robustness gate: storm tbaad's dispatch stack with the
# seeded chaos harness (malformed JSON, ill-typed documents, oversized
# batches, deadline-busting queries, fault-injected engines) across
# several seeds, then fire the load generator's shed/backoff burst via
# the server bench. Fails on any crash, any non-structured error, any
# unsound degraded answer, or any document that does not recover.
serve-smoke:
	dune build bin
	dune exec bin/tbaad.exe -- --chaos 1 --chaos-ops 400 --workers 2
	dune exec bin/tbaad.exe -- --chaos 2 --chaos-ops 400 --workers 2
	dune exec bin/tbaad.exe -- --chaos 3 --chaos-ops 400 --workers 2

clean:
	dune clean
