(* tbaac — the MiniM3 whole-program optimizer driver.

   Subcommands mirror the pipeline: check (front end), ir (lowering),
   aliases (the three TBAA analyses and the static metrics), optimize
   (RLE / devirt+inline with a chosen oracle), run (simulated execution
   with the machine counters), and experiment (regenerate the paper's
   tables and figures). Programs come from a file or, with --workload,
   from the built-in benchmark suite. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let source_of ~file ~workload =
  match (file, workload) with
  | Some path, None -> Ok (path, read_file path)
  | None, Some name -> (
    match Workloads.Suite.find name with
    | w -> Ok (name, w.Workloads.Workload.source)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown workload %S (try: %s)" name
           (String.concat ", "
              (List.map
                 (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name)
                 Workloads.Suite.all))))
  | Some _, Some _ -> Error "give either FILE or --workload, not both"
  | None, None -> Error "a FILE argument or --workload NAME is required"

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniM3 source file.")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload"; "w" ] ~docv:"NAME"
        ~doc:"Use a built-in benchmark program instead of a file.")

let analysis_conv =
  Arg.enum
    [ ("typedecl", Opt.Pipeline.Otype_decl);
      ("fieldtypedecl", Opt.Pipeline.Ofield_type_decl);
      ("smfieldtyperefs", Opt.Pipeline.Osm_field_type_refs) ]

let analysis_arg =
  Arg.(
    value
    & opt analysis_conv Opt.Pipeline.Osm_field_type_refs
    & info [ "analysis"; "a" ] ~docv:"ANALYSIS"
        ~doc:
          "Alias analysis: $(b,typedecl), $(b,fieldtypedecl) or \
           $(b,smfieldtyperefs).")

let world_conv =
  Arg.enum [ ("closed", Tbaa.World.Closed); ("open", Tbaa.World.Open) ]

let world_arg =
  Arg.(
    value
    & opt world_conv Tbaa.World.Closed
    & info [ "world" ] ~docv:"WORLD"
        ~doc:"Closed-world (whole program) or open-world (incomplete program) analysis.")

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("tbaac: " ^ msg);
    exit 1

let with_source file workload k =
  let name, src = or_die (source_of ~file ~workload) in
  try k name src with
  | Support.Diag.Compile_error d ->
    prerr_endline (Support.Diag.to_string d);
    exit 1

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run file workload =
    with_source file workload (fun name src ->
        match Minim3.Typecheck.check_string_all ~file:name src with
        | Ok p ->
          Printf.printf "%s: OK (%d types, %d globals, %d procedures)\n"
            (Support.Ident.name p.Minim3.Tast.module_name)
            (List.length p.Minim3.Tast.type_names)
            (List.length p.Minim3.Tast.globals)
            (List.length p.Minim3.Tast.procs)
        | Error diags ->
          List.iter
            (fun d -> prerr_endline (Support.Diag.to_string d))
            diags;
          Printf.eprintf "tbaac: %d error%s\n" (List.length diags)
            (if List.length diags = 1 then "" else "s");
          exit 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and typecheck a MiniM3 program.")
    Term.(const run $ file_arg $ workload_arg)

let format_cmd =
  let run file workload =
    with_source file workload (fun name src ->
        print_string (Minim3.Ast_pp.reprint ~file:name src))
  in
  Cmd.v
    (Cmd.info "format" ~doc:"Parse a program and reprint it with normalized layout.")
    Term.(const run $ file_arg $ workload_arg)

let ir_cmd =
  let run file workload =
    with_source file workload (fun name src ->
        let program = Ir.Lower.lower_string ~file:name src in
        Format.printf "%a@." Ir.Cfg.pp_program program)
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Lower a program and dump its IR.")
    Term.(const run $ file_arg $ workload_arg)

let aliases_cmd =
  let run file workload world show_trt =
    with_source file workload (fun name src ->
        let program = Ir.Lower.lower_string ~file:name src in
        let a = Tbaa.Analysis.analyze ~world program in
        let facts = a.Tbaa.Analysis.facts in
        Printf.printf "heap memory references: %d\n"
          (List.length facts.Tbaa.Facts.memrefs);
        List.iter
          (fun (o : Tbaa.Oracle.t) ->
            let c = Tbaa.Alias_pairs.count o facts in
            Printf.printf
              "%-16s local pairs: %6d (%.1f/ref)   global pairs: %6d (%.1f/ref)\n"
              o.Tbaa.Oracle.name c.Tbaa.Alias_pairs.local_pairs
              (Tbaa.Alias_pairs.average_local c)
              c.Tbaa.Alias_pairs.global_pairs
              (Tbaa.Alias_pairs.average_global c))
          (Tbaa.Analysis.oracles a);
        if show_trt then begin
          let tenv = facts.Tbaa.Facts.tenv in
          Printf.printf "\nTypeRefsTable (pointer types):\n";
          for t = 0 to Minim3.Types.count tenv - 1 do
            if Minim3.Types.is_pointer tenv t && t <> Minim3.Types.tid_null then begin
              let refs = a.Tbaa.Analysis.type_refs_table t in
              Printf.printf "  %-28s -> { %s }\n"
                (Minim3.Types.to_string tenv t)
                (String.concat ", "
                   (List.map (Minim3.Types.to_string tenv) refs))
            end
          done
        end)
  in
  let trt_arg =
    Arg.(value & flag & info [ "type-refs" ] ~doc:"Also print the TypeRefsTable.")
  in
  Cmd.v
    (Cmd.info "aliases"
       ~doc:"Run the three alias analyses and report the static alias-pair metric.")
    Term.(const run $ file_arg $ workload_arg $ world_arg $ trt_arg)

let optimize_cmd =
  let run file workload analysis world minv pre copyprop licm slf dse jobs
      stats verify =
    with_source file workload (fun name src ->
        let program = Ir.Lower.lower_string ~file:name src in
        let config =
          { Opt.Pipeline.oracle_kind = analysis; world;
            passes =
              { Opt.Pass_manager.Config.devirt_inline = minv; licm; pre; slf;
                rle = true; copyprop; dse; local_cse = false };
            jobs }
        in
        let result =
          if verify then Opt.Pipeline.run_guarded ~verify:true program config
          else Opt.Pipeline.run program config
        in
        if stats then begin
          let config_desc =
            String.concat "+"
              (("rle:" ^ Opt.Pipeline.oracle_name analysis)
               :: List.filter_map
                    (fun (on, tag) -> if on then Some tag else None)
                    [ (minv, "minv"); (licm, "licm"); (pre, "pre");
                      (slf, "slf"); (copyprop, "cp"); (dse, "dse");
                      (world = Tbaa.World.Open, "open") ])
          in
          List.iter
            (fun r ->
              let record =
                match
                  Opt.Pass.report_to_json
                    ~extra:
                      [ ("workload", Support.Json.String name);
                        ("config", Support.Json.String config_desc) ]
                    r
                with
                | Support.Json.Obj fields -> Support.Json.envelope fields
                | j -> j
              in
              print_endline (Support.Json.to_string record))
            result.Opt.Pipeline.reports
        end;
        (match result.Opt.Pipeline.devirt_stats with
        | Some d ->
          Printf.printf "devirtualized: %d resolved, %d kept virtual\n"
            d.Opt.Devirt.resolved d.Opt.Devirt.unresolved
        | None -> ());
        (match result.Opt.Pipeline.inline_stats with
        | Some i -> Printf.printf "inlined: %d call sites\n" i.Opt.Inline.inlined
        | None -> ());
        (match result.Opt.Pipeline.pre_stats with
        | Some p ->
          Printf.printf "PRE: %d loads inserted, %d edges split\n"
            p.Opt.Pre.inserted p.Opt.Pre.edges_split
        | None -> ());
        (match result.Opt.Pipeline.copyprop_stats with
        | Some c -> Printf.printf "copy propagation: %d uses rewritten\n"
            c.Opt.Copyprop.replaced
        | None -> ());
        (match result.Opt.Pipeline.licm_stats with
        | Some l -> Printf.printf "LICM: %d loads hoisted\n" l.Opt.Licm.hoisted
        | None -> ());
        (match result.Opt.Pipeline.slf_stats with
        | Some s ->
          Printf.printf "store-to-load forwarding: %d loads forwarded\n"
            s.Opt.Slf.forwarded
        | None -> ());
        (match result.Opt.Pipeline.dse_stats with
        | Some d ->
          Printf.printf "DSE: %d dead stores removed\n" d.Opt.Dse.removed
        | None -> ());
        (match result.Opt.Pipeline.rle_stats with
        | Some s ->
          Printf.printf
            "RLE (%s): %d hoisted, %d eliminated, %d shortened (%d removed)\n"
            (Opt.Pipeline.oracle_name analysis)
            s.Opt.Rle.hoisted s.Opt.Rle.eliminated s.Opt.Rle.shortened
            (Opt.Rle.removed s)
        | None -> ());
        let failures = Opt.Pass_manager.failures result.Opt.Pipeline.reports in
        if failures <> [] then begin
          List.iter
            (fun (pass, why) ->
              Printf.eprintf "tbaac: pass %s failed: %s\n" pass why)
            failures;
          exit 1
        end)
  in
  let minv_arg =
    Arg.(
      value & flag
      & info [ "minv" ]
          ~doc:"Also run method invocation resolution and inlining first.")
  in
  let pre_arg =
    Arg.(
      value & flag
      & info [ "pre" ] ~doc:"Also run partial redundancy elimination (extension).")
  in
  let copyprop_arg =
    Arg.(
      value & flag
      & info [ "copyprop" ]
          ~doc:"Also run copy propagation and a second RLE pass (extension).")
  in
  let licm_arg =
    Arg.(
      value & flag
      & info [ "licm" ]
          ~doc:"Also run standalone loop-invariant load motion (extension).")
  in
  let slf_arg =
    Arg.(
      value & flag
      & info [ "slf" ]
          ~doc:"Also run store-to-load forwarding (extension).")
  in
  let dse_arg =
    Arg.(
      value & flag
      & info [ "dse" ] ~doc:"Also run dead-store elimination (extension).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run per-procedure passes across $(docv) domains. Output is \
             byte-identical to a sequential run.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Emit one JSON line per executed pass (timing, counters, \
             oracle-cache and dataflow activity) before the summary.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify-ir" ]
          ~doc:
            "Validate the IR after every pass; a pass leaving invalid IR \
             (or crashing) is rolled back and quarantined, and the run \
             exits nonzero naming it.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the optimizer and report what it did.")
    Term.(
      const run $ file_arg $ workload_arg $ analysis_arg $ world_arg $ minv_arg
      $ pre_arg $ copyprop_arg $ licm_arg $ slf_arg $ dse_arg $ jobs_arg
      $ stats_arg $ verify_arg)

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Bound executed instructions; an exhausted program halts \
           gracefully instead of spinning (default 50 million).")

let run_cmd =
  let run file workload optimize analysis audit fuel quiet reference =
    with_source file workload (fun name src ->
        let program = Ir.Lower.lower_string ~file:name src in
        let optimize = optimize || audit in
        let auditor =
          if optimize then begin
            let a = Tbaa.Analysis.analyze program in
            let oracle = Opt.Pipeline.select a analysis in
            if audit then begin
              let claims = Tbaa.Claims.create ~oracle:oracle.Tbaa.Oracle.name in
              ignore (Opt.Rle.run ~claims program oracle);
              Some (Sim.Audit.create claims, claims)
            end
            else begin
              ignore (Opt.Rle.run program oracle);
              None
            end
          end
          else None
        in
        ignore (Opt.Local_cse.run program);
        let on_access =
          Option.map (fun (a, _) ac -> Sim.Audit.on_access a ac) auditor
        in
        let engine =
          if reference then Sim.Interp.run_reference else Sim.Interp.run
        in
        let o = engine ?fuel ?on_load:None ?on_access program in
        if not quiet then print_string o.Sim.Interp.output;
        let c = o.Sim.Interp.counters in
        Printf.eprintf
          "instructions: %d\nheap loads: %d\nother loads: %d\nstores: %d\n\
           calls: %d\nallocations: %d\ncycles: %d\ncache: %d hits, %d misses\n\
           soft faults: %d\n"
          c.Sim.Interp.instrs c.Sim.Interp.heap_loads c.Sim.Interp.other_loads
          c.Sim.Interp.stores c.Sim.Interp.calls c.Sim.Interp.allocations
          o.Sim.Interp.cycles o.Sim.Interp.cache_hits o.Sim.Interp.cache_misses
          o.Sim.Interp.soft_faults;
        match auditor with
        | None -> ()
        | Some (a, claims) ->
          let violations = Sim.Audit.check a in
          Printf.eprintf
            "audit: %d claim pairs (%d disjoint), %d accesses over %d paths, \
             %d violation%s\n"
            (Tbaa.Claims.n_pairs claims)
            (List.length (Tbaa.Claims.disjoint_pairs claims))
            (Sim.Audit.n_accesses a) (Sim.Audit.n_paths a)
            (List.length violations)
            (if List.length violations = 1 then "" else "s");
          List.iter
            (fun v ->
              Printf.eprintf "audit violation: %s\n"
                (Sim.Audit.violation_to_string v))
            violations;
          if violations <> [] then exit 1)
  in
  let optimize_arg =
    Arg.(value & flag & info [ "optimize"; "O" ] ~doc:"Apply TBAA + RLE first.")
  in
  let audit_arg =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Cross-check the optimizer's no-alias claims against the \
             concrete addresses the run touches (implies $(b,--optimize)); \
             exits nonzero on a soundness violation.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the program's output.")
  in
  let reference_arg =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Use the tree-walking reference interpreter instead of the \
             pre-compiled engine (same observable behaviour, slower; for \
             differential debugging).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program on the simulator and print counters.")
    Term.(
      const run $ file_arg $ workload_arg $ optimize_arg $ analysis_arg
      $ audit_arg $ fuel_arg $ quiet_arg $ reference_arg)

let audit_cmd =
  let run file workload analysis world minv licm slf dse fault_rate fault_seed
      fuel json =
    let programs =
      match (file, workload) with
      | None, None ->
        List.map
          (fun (w : Workloads.Workload.t) ->
            (w.Workloads.Workload.name, w.Workloads.Workload.source))
          Workloads.Suite.all
      | _ -> [ or_die (source_of ~file ~workload) ]
    in
    let fault =
      if fault_rate > 0.0 then
        Some (Opt.Pass.fault ~seed:fault_seed ~rate:fault_rate ())
      else None
    in
    let failed = ref false in
    List.iter
      (fun (name, src) ->
        let oracle_label =
          Opt.Pipeline.oracle_name analysis
          ^
          match fault with
          | Some f ->
            Printf.sprintf "+fault(seed=%d,rate=%g)" f.Opt.Pass.f_seed
              f.Opt.Pass.f_rate
          | None -> ""
        in
        let claims = Tbaa.Claims.create ~oracle:oracle_label in
        try
          let program = Ir.Lower.lower_string ~file:name src in
          let config =
            { Opt.Pipeline.oracle_kind = analysis; world;
              passes =
                { Opt.Pass_manager.Config.devirt_inline = minv; licm;
                  pre = false; slf; rle = true; copyprop = false; dse;
                  local_cse = false };
              jobs = 1 }
          in
          let result =
            Opt.Pipeline.run_guarded ~verify:true ~claims ?fault program config
          in
          let failures =
            Opt.Pass_manager.failures result.Opt.Pipeline.reports
          in
          let auditor = Sim.Audit.create claims in
          let o =
            Sim.Interp.run ?fuel ~on_access:(Sim.Audit.on_access auditor)
              program
          in
          let violations = Sim.Audit.check auditor in
          if violations <> [] || failures <> [] then failed := true;
          if json then
            print_endline
              (Support.Json.to_string
                 (Support.Json.Obj
                    [ ("workload", Support.Json.String name);
                      ("halted", Support.Json.Bool o.Sim.Interp.halted);
                      ( "pass_failures",
                        Support.Json.List
                          (List.map
                             (fun (p, why) ->
                               Support.Json.Obj
                                 [ ("pass", Support.Json.String p);
                                   ("reason", Support.Json.String why) ])
                             failures) );
                      ("audit", Sim.Audit.report_json auditor violations) ]))
          else begin
            Printf.printf
              "%-12s pairs=%-5d disjoint=%-5d accesses=%-8d paths=%-4d \
               failures=%d violations=%d\n"
              name
              (Tbaa.Claims.n_pairs claims)
              (List.length (Tbaa.Claims.disjoint_pairs claims))
              (Sim.Audit.n_accesses auditor)
              (Sim.Audit.n_paths auditor)
              (List.length failures) (List.length violations);
            List.iter
              (fun (pass, why) ->
                Printf.printf "  pass failure: %s: %s\n" pass why)
              failures;
            List.iter
              (fun v ->
                Printf.printf "  violation: %s\n"
                  (Sim.Audit.violation_to_string v))
              violations
          end
        with Support.Diag.Compile_error d ->
          failed := true;
          if json then
            print_endline
              (Support.Json.to_string
                 (Support.Json.Obj
                    [ ("workload", Support.Json.String name);
                      ( "error",
                        Support.Json.String (Support.Diag.to_string d) ) ]))
          else Printf.printf "%-12s ERROR %s\n" name (Support.Diag.to_string d))
      programs;
    (match fault with
    | Some f ->
      Printf.eprintf "fault injection: %d alias flips, %d kill flips applied\n"
        f.Opt.Pass.f_stats.Tbaa.Oracle_fault.alias_flips
        f.Opt.Pass.f_stats.Tbaa.Oracle_fault.kill_flips
    | None -> ());
    if !failed then exit 1
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:
            "Deterministically flip this fraction of oracle answers \
             (negative testing: the auditor should catch the resulting \
             miscompiles).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0xBAA
      & info [ "fault-seed" ] ~docv:"S" ~doc:"PRNG seed for fault injection.")
  in
  let minv_arg =
    Arg.(
      value & flag
      & info [ "minv" ] ~doc:"Also run method resolution and inlining first.")
  in
  let licm_arg =
    Arg.(
      value & flag
      & info [ "licm" ]
          ~doc:"Also audit standalone loop-invariant load motion.")
  in
  let slf_arg =
    Arg.(
      value & flag
      & info [ "slf" ] ~doc:"Also audit store-to-load forwarding.")
  in
  let dse_arg =
    Arg.(
      value & flag & info [ "dse" ] ~doc:"Also audit dead-store elimination.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"One JSON report per program instead of text.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Optimize with IR validation between passes, then execute under \
          the dynamic soundness auditor; defaults to the whole built-in \
          suite. Exits nonzero on any validator failure or soundness \
          violation.")
    Term.(
      const run $ file_arg $ workload_arg $ analysis_arg $ world_arg $ minv_arg
      $ licm_arg $ slf_arg $ dse_arg $ fault_rate_arg $ fault_seed_arg
      $ fuel_arg $ json_arg)

let fuzz_cmd =
  let run count seed size fault_rate fault_seed out fuel max_cx replay =
    match replay with
    | Some path -> (
      match Harness.Fuzz.replay ?fuel ~path () with
      | Ok f ->
        Printf.printf "reproduced [%s/%s]: %s\n"
          (Harness.Fuzz.oracle_id_to_string f.Harness.Fuzz.f_oracle)
          f.Harness.Fuzz.f_config f.Harness.Fuzz.f_detail
      | Error reason ->
        prerr_endline ("tbaac: " ^ reason);
        exit 1)
    | None ->
      let fault =
        if fault_rate > 0.0 then Some (fault_seed, fault_rate) else None
      in
      let out_dir = if out = "" then None else Some out in
      let r =
        Harness.Fuzz.run ~out_dir ?fault ?fuel ~size
          ?max_counterexamples:max_cx ~log:print_endline ~count ~seed ()
      in
      Printf.printf "fuzz: %d/%d programs clean (%d configurations × 4 oracles)\n"
        (r.Harness.Fuzz.total - r.Harness.Fuzz.failed)
        r.Harness.Fuzz.total
        (List.length (Harness.Fuzz.config_names ()));
      List.iter
        (fun (cx : Harness.Fuzz.counterexample) ->
          Printf.printf
            "counterexample: seed %d [%s/%s] %d -> %d bytes%s%s\n"
            cx.Harness.Fuzz.cx_seed
            (Harness.Fuzz.oracle_id_to_string
               cx.Harness.Fuzz.cx_failure.Harness.Fuzz.f_oracle)
            cx.Harness.Fuzz.cx_failure.Harness.Fuzz.f_config
            cx.Harness.Fuzz.cx_original_bytes cx.Harness.Fuzz.cx_shrunk_bytes
            (match cx.Harness.Fuzz.cx_path with
            | Some p -> " -> " ^ p
            | None -> "")
            (if cx.Harness.Fuzz.cx_path <> None then
               if cx.Harness.Fuzz.cx_replayed then " (replays)"
               else " (REPLAY FAILED)"
             else ""))
        r.Harness.Fuzz.counterexamples;
      (* With fault injection the failures are the expected outcome (the
         oracles catching seeded miscompiles); without it any failure is a
         real bug in the pipeline. *)
      if fault = None && r.Harness.Fuzz.failed > 0 then exit 1
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Base generator seed; program $(i,i) uses seed S+i.")
  in
  let size_arg =
    Arg.(
      value & opt int 2
      & info [ "size" ] ~docv:"K"
          ~doc:"Generator size knob, 1-3: type-hierarchy depth and body length.")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:
            "Deterministically flip this fraction of may-alias answers in \
             every optimized configuration (detector self-test: the oracles \
             should report failures, which exit 0).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0xBAA
      & info [ "fault-seed" ] ~docv:"S" ~doc:"PRNG seed for fault injection.")
  in
  let out_arg =
    Arg.(
      value & opt string "fuzz-failures"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for shrunk repro files; empty string disables writing.")
  in
  let max_cx_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-counterexamples" ] ~docv:"N"
          ~doc:"Shrink at most N failing programs (default 3).")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a repro file written by a previous run: re-run the \
             recorded (oracle, configuration) against its source; exits \
             nonzero unless the failure reproduces.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-typed programs and check every optimized \
          configuration against the differential-semantics, \
          precision-lattice, round-trip and IR-validity oracles; failures \
          are shrunk to minimal repro files.")
    Term.(
      const run $ count_arg $ seed_arg $ size_arg $ fault_rate_arg
      $ fault_seed_arg $ out_arg $ fuel_arg $ max_cx_arg $ replay_arg)

let experiment_cmd =
  let names =
    [ ("table4", fun () -> Harness.Experiments.Table4.render ());
      ("table5", fun () -> Harness.Experiments.Table5.render ());
      ("table6", fun () -> Harness.Experiments.Table6.render ());
      ("figure8", fun () -> Harness.Experiments.Figure8.render ());
      ("figure9", fun () -> Harness.Experiments.Figure9.render ());
      ("figure10", fun () -> Harness.Experiments.Figure10.render ());
      ("figure11", fun () -> Harness.Experiments.Figure11.render ());
      ("figure12", fun () -> Harness.Experiments.Figure12.render ());
      ("abl-merge", fun () -> Harness.Experiments.Ablation_merge.render ());
      ("abl-modref", fun () -> Harness.Experiments.Ablation_modref.render ()) ]
  in
  let run which =
    match which with
    | "all" -> Harness.Experiments.run_all Format.std_formatter
    | name -> (
      match List.assoc_opt name names with
      | Some render -> print_endline (render ())
      | None ->
        prerr_endline
          ("tbaac: unknown experiment (try: all, "
          ^ String.concat ", " (List.map fst names)
          ^ ")");
        exit 1)
  in
  let which_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id or 'all'.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure from the paper's evaluation.")
    Term.(const run $ which_arg)

let gen_scale_cmd =
  let run n = print_string (Gen.Scale.source n) in
  let n_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Worker procedure count.")
  in
  Cmd.v
    (Cmd.info "gen-scale"
       ~doc:
         "Emit the deterministic scaleN MiniM3 corpus: N worker procedures \
          over a fixed library layer and 200-type hierarchy (the \
          incremental engine's benchmark subject).")
    Term.(const run $ n_arg)

let main =
  Cmd.group
    (Cmd.info "tbaac" ~version:"1.0.0"
       ~doc:"Type-based alias analysis for MiniM3 (Diwan, McKinley & Moss, PLDI 1998)")
    [ check_cmd; format_cmd; ir_cmd; aliases_cmd; optimize_cmd; run_cmd;
      audit_cmd; fuzz_cmd; gen_scale_cmd; experiment_cmd ]

(* Usage errors are machine-recognisable: unknown subcommands and bad
   flags produce exactly one diagnostic line on stderr and exit code 2,
   instead of cmdliner's multi-paragraph dump and exit 124. *)
let () =
  let buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer buf in
  match Cmd.eval_value ~err main with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) ->
    Format.pp_print_flush err ();
    let first_line =
      match String.split_on_char '\n' (String.trim (Buffer.contents buf)) with
      | l :: _ ->
        let prefix = "tbaac: " in
        if String.length l > String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then String.sub l (String.length prefix)
               (String.length l - String.length prefix)
        else l
      | [] -> "invalid command line"
    in
    Printf.eprintf "tbaac: usage error: %s (try 'tbaac --help')\n" first_line;
    exit 2
  | Error `Exn ->
    Format.pp_print_flush err ();
    prerr_string (Buffer.contents buf);
    exit 125
