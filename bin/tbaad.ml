(* tbaad: the long-lived alias-query daemon.

   Transports only — all request semantics (dispatch, deadlines, batch
   caps, degradation, cancellation) live in [Server.Dispatch].
   Line-delimited JSON-RPC over stdio by default, or over a unix-domain
   socket with [--socket] (multiple concurrent clients). Lines that
   arrive faster than they are served land in a bounded pending queue;
   overflow is shed immediately with a structured Overloaded response
   rather than growing the heap.

   With [--workers N] (N > 0) requests are dispatched concurrently over
   a worker pool: each client's requests are still answered in order,
   but different clients proceed in parallel and a [cancel] request can
   overtake the work it targets. [--workers 0] (the default) keeps the
   fully serialized transport loops.

   Signal/EINTR discipline: SIGPIPE is ignored process-wide (a client
   that disconnects mid-response must surface as EPIPE on that client's
   fd, not kill the daemon), every read/write/select retries EINTR, and
   EPIPE/ECONNRESET on a socket client tears down that client only. *)

open Cmdliner
module Dispatch = Server.Dispatch

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* ------------------------------------------------------------------ *)
(* Line framing                                                        *)
(* ------------------------------------------------------------------ *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Split [buf ^ chunk] into complete lines, leaving the unterminated
   tail in [buf]. *)
let take_lines buf =
  let s = Buffer.contents buf in
  Buffer.clear buf;
  match String.split_on_char '\n' s with
  | [] -> []
  | parts ->
    let rec go acc = function
      | [ tail ] ->
        Buffer.add_string buf tail;
        List.rev acc
      | line :: rest -> go (strip_cr line :: acc) rest
      | [] -> List.rev acc
    in
    go [] parts

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + retry_intr (fun () -> Unix.write fd b !off (n - !off))
  done

(* ------------------------------------------------------------------ *)
(* stdio transport                                                     *)
(* ------------------------------------------------------------------ *)

let serve_stdio srv =
  let cfg = Dispatch.config srv in
  let pending = Queue.create () in
  let inbuf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let eof = ref false in
  let enqueue line =
    if String.trim line = "" then ()
    else if Queue.length pending >= cfg.Dispatch.max_pending then begin
      print_endline (Dispatch.shed_line srv ~reason:"pending queue full");
      flush stdout
    end
    else Queue.add line pending
  in
  let drain_input ~block =
    let readable =
      block
      ||
      match Unix.select [ Unix.stdin ] [] [] 0.0 with
      | [ _ ], _, _ -> true
      | _ -> false
    in
    if readable && not !eof then begin
      let n =
        retry_intr (fun () ->
            Unix.read Unix.stdin chunk 0 (Bytes.length chunk))
      in
      if n = 0 then eof := true
      else begin
        Buffer.add_subbytes inbuf chunk 0 n;
        List.iter enqueue (take_lines inbuf)
      end
    end
  in
  while
    (not (Dispatch.shutting_down srv))
    && ((not !eof) || not (Queue.is_empty pending))
  do
    if Queue.is_empty pending then drain_input ~block:true
    else begin
      (* Pull in anything that already arrived so the queue bound (and
         shedding) reflects true backlog, then serve one request. *)
      drain_input ~block:false;
      print_endline (Dispatch.handle_line srv (Queue.pop pending));
      flush stdout
    end
  done

(* Concurrent stdio: the main thread only reads and submits; workers
   compute and write responses under one output mutex (whole lines, so
   interleaving is per-line and each client-visible response is
   intact). *)
let serve_stdio_concurrent srv =
  let out_m = Mutex.create () in
  let respond line =
    Mutex.protect out_m (fun () ->
        print_endline line;
        flush stdout)
  in
  let inbuf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let eof = ref false in
  while (not (Dispatch.shutting_down srv)) && not !eof do
    let n =
      retry_intr (fun () -> Unix.read Unix.stdin chunk 0 (Bytes.length chunk))
    in
    if n = 0 then eof := true
    else begin
      Buffer.add_subbytes inbuf chunk 0 n;
      List.iter
        (fun line ->
          if String.trim line <> "" then
            Dispatch.submit srv ~client:"stdio" line ~respond)
        (take_lines inbuf)
    end
  done;
  Dispatch.stop srv

(* ------------------------------------------------------------------ *)
(* unix-socket transport                                               *)
(* ------------------------------------------------------------------ *)

type client = {
  cl_fd : Unix.file_descr;
  cl_buf : Buffer.t;
  cl_pending : string Queue.t;
  mutable cl_eof : bool;
}

let listen_on path =
  if Sys.file_exists path then Sys.remove path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  prerr_endline ("tbaad: listening on " ^ path);
  listen_fd

let close_listener listen_fd path =
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists path then Sys.remove path

(* Errors that mean "this client is gone" — never "the daemon is". *)
let is_disconnect = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ESHUTDOWN
  | Unix.ENOTCONN ->
    true
  | _ -> false

let serve_socket srv path =
  let cfg = Dispatch.config srv in
  let listen_fd = listen_on path in
  let clients = ref [] in
  let chunk = Bytes.create 65536 in
  let respond cl line =
    match write_all cl.cl_fd (line ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) when is_disconnect e ->
      cl.cl_eof <- true
  in
  let read_client cl =
    match
      retry_intr (fun () -> Unix.read cl.cl_fd chunk 0 (Bytes.length chunk))
    with
    | 0 -> cl.cl_eof <- true
    | n ->
      Buffer.add_subbytes cl.cl_buf chunk 0 n;
      List.iter
        (fun line ->
          if String.trim line = "" then ()
          else if Queue.length cl.cl_pending >= cfg.Dispatch.max_pending
          then respond cl (Dispatch.shed_line srv ~reason:"pending queue full")
          else Queue.add line cl.cl_pending)
        (take_lines cl.cl_buf)
    | exception Unix.Unix_error (e, _, _) when is_disconnect e ->
      cl.cl_eof <- true
  in
  while not (Dispatch.shutting_down srv) do
    let backlog = List.exists (fun c -> not (Queue.is_empty c.cl_pending)) !clients in
    let fds = listen_fd :: List.map (fun c -> c.cl_fd) !clients in
    let readable, _, _ =
      retry_intr (fun () ->
          Unix.select fds [] [] (if backlog then 0.0 else 1.0))
    in
    if List.mem listen_fd readable then begin
      let fd, _ = retry_intr (fun () -> Unix.accept listen_fd) in
      clients :=
        { cl_fd = fd; cl_buf = Buffer.create 4096;
          cl_pending = Queue.create (); cl_eof = false }
        :: !clients
    end;
    List.iter
      (fun cl -> if List.mem cl.cl_fd readable then read_client cl)
      !clients;
    (* One request per client per round: a client with a huge backlog
       cannot starve the others. *)
    List.iter
      (fun cl ->
        if not (Queue.is_empty cl.cl_pending) then
          respond cl (Dispatch.handle_line srv (Queue.pop cl.cl_pending)))
      !clients;
    clients :=
      List.filter
        (fun cl ->
          if cl.cl_eof && Queue.is_empty cl.cl_pending then begin
            (try Unix.close cl.cl_fd with Unix.Unix_error _ -> ());
            false
          end
          else true)
        !clients
  done;
  List.iter
    (fun cl -> try Unix.close cl.cl_fd with Unix.Unix_error _ -> ())
    !clients;
  close_listener listen_fd path

(* ------------------------------------------------------------------ *)
(* concurrent unix-socket transport (--workers > 0)                    *)
(* ------------------------------------------------------------------ *)

type cclient = {
  cc_fd : Unix.file_descr;
  cc_name : string;
  cc_buf : Buffer.t;
  cc_wm : Mutex.t;  (* workers write whole response lines under this *)
  mutable cc_eof : bool;  (* reader saw EOF, or a write hit a dead peer *)
}

(* The main thread accepts, reads and submits; worker domains answer
   each client directly through its per-client write mutex. A client is
   torn down (fd closed, record dropped) only once its side is EOF *and*
   the dispatcher has no queued or running work for it — so a worker can
   never write into a closed descriptor, and one client vanishing
   mid-batch leaves every other client's stream untouched. *)
let serve_socket_concurrent srv path =
  let listen_fd = listen_on path in
  let clients = ref [] in
  let chunk = Bytes.create 65536 in
  let next_id = ref 0 in
  let respond cl line =
    Mutex.protect cl.cc_wm (fun () ->
        if not cl.cc_eof then
          match write_all cl.cc_fd (line ^ "\n") with
          | () -> ()
          | exception Unix.Unix_error (e, _, _) when is_disconnect e ->
            cl.cc_eof <- true)
  in
  let read_client cl =
    match
      retry_intr (fun () -> Unix.read cl.cc_fd chunk 0 (Bytes.length chunk))
    with
    | 0 -> cl.cc_eof <- true
    | n ->
      Buffer.add_subbytes cl.cc_buf chunk 0 n;
      List.iter
        (fun line ->
          if String.trim line <> "" then
            Dispatch.submit srv ~client:cl.cc_name line ~respond:(respond cl))
        (take_lines cl.cc_buf)
    | exception Unix.Unix_error (e, _, _) when is_disconnect e ->
      cl.cc_eof <- true
  in
  while not (Dispatch.shutting_down srv) do
    let live = List.filter (fun c -> not c.cc_eof) !clients in
    let fds = listen_fd :: List.map (fun c -> c.cc_fd) live in
    let readable, _, _ =
      retry_intr (fun () -> Unix.select fds [] [] 0.2)
    in
    if List.mem listen_fd readable then begin
      let fd, _ = retry_intr (fun () -> Unix.accept listen_fd) in
      incr next_id;
      clients :=
        { cc_fd = fd; cc_name = Printf.sprintf "c%d" !next_id;
          cc_buf = Buffer.create 4096; cc_wm = Mutex.create ();
          cc_eof = false }
        :: !clients
    end;
    List.iter
      (fun cl -> if List.mem cl.cc_fd readable then read_client cl)
      live;
    clients :=
      List.filter
        (fun cl ->
          if cl.cc_eof && Dispatch.client_idle srv cl.cc_name then begin
            Mutex.protect cl.cc_wm (fun () ->
                try Unix.close cl.cc_fd with Unix.Unix_error _ -> ());
            false
          end
          else true)
        !clients
  done;
  (* Shutdown was served: let in-flight work drain, answer what can
     still be answered, then tear everything down. *)
  Dispatch.stop srv;
  List.iter
    (fun cl -> try Unix.close cl.cc_fd with Unix.Unix_error _ -> ())
    !clients;
  close_listener listen_fd path

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let run socket chaos_seed chaos_ops max_batch max_pending deadline_ms
    max_docs allow_inject optimize workers =
  (* A client that disconnects mid-response must surface as EPIPE on its
     own fd, not as a process-killing signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config =
    { Dispatch.default_config with
      Dispatch.max_batch;
      max_pending;
      default_deadline_ms = deadline_ms;
      max_docs;
      allow_inject = allow_inject || chaos_seed <> None;
      optimize;
      workers }
  in
  match chaos_seed with
  | Some seed ->
    (* Self-test mode: storm an in-process server and report. *)
    let report = Server.Chaos.run ~workers ~seed ~ops:chaos_ops () in
    print_endline (Support.Json.to_string (Server.Chaos.report_json report));
    if report.Server.Chaos.violations <> [] then exit 1
  | None -> (
    let srv = Dispatch.create ~config () in
    match (socket, workers > 0) with
    | Some path, true -> serve_socket_concurrent srv path
    | Some path, false -> serve_socket srv path
    | None, true -> serve_stdio_concurrent srv
    | None, false -> serve_stdio srv)

let main =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve on a unix-domain socket instead of stdio.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Run the chaos harness against an in-process server (implies \
             fault injection), print the report as JSON and exit nonzero \
             on any invariant violation.")
  in
  let chaos_ops_arg =
    Arg.(
      value & opt int 400
      & info [ "chaos-ops" ] ~docv:"N" ~doc:"Storm length in requests.")
  in
  let max_batch_arg =
    Arg.(
      value
      & opt int Dispatch.default_config.Dispatch.max_batch
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Maximum query pairs (or batched requests) per request.")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt int Dispatch.default_config.Dispatch.max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Maximum queued requests per client before the daemon sheds \
             with a structured Overloaded response.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float Dispatch.default_config.Dispatch.default_deadline_ms
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline; clients may override per \
             request with the deadline_ms param.")
  in
  let max_docs_arg =
    Arg.(
      value
      & opt int Dispatch.default_config.Dispatch.max_docs
      & info [ "max-docs" ] ~docv:"N" ~doc:"Document-store capacity.")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "allow-inject" ]
          ~doc:
            "Honour fault-injection params on open/update (testing only).")
  in
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Incrementally re-optimize every installed revision on the \
             side (per-procedure results memoized across revisions); \
             stats surface under 'optimizer' in stats and health. Query \
             answers are unaffected.")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Dispatch.default_config.Dispatch.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Dispatch requests concurrently over N worker domains \
             (per-client responses stay in submission order; cancel \
             requests can overtake the work they target). 0 serializes \
             all dispatch on the transport thread.")
  in
  Cmd.v
    (Cmd.info "tbaad" ~version:"1.0.0"
       ~doc:
         "Fault-tolerant alias-query daemon for MiniM3 (JSON-RPC over \
          stdio or a unix socket)")
    Term.(
      const run $ socket_arg $ chaos_arg $ chaos_ops_arg $ max_batch_arg
      $ max_pending_arg $ deadline_arg $ max_docs_arg $ inject_arg
      $ optimize_arg $ workers_arg)

(* Usage errors are machine-recognisable: one line on stderr, exit 2 —
   the same contract tbaac follows. *)
let () =
  let buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer buf in
  match Cmd.eval_value ~err main with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) ->
    Format.pp_print_flush err ();
    let first_line =
      match String.split_on_char '\n' (String.trim (Buffer.contents buf)) with
      | l :: _ ->
        let prefix = "tbaad: " in
        if String.length l > String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then String.sub l (String.length prefix)
               (String.length l - String.length prefix)
        else l
      | [] -> "invalid command line"
    in
    Printf.eprintf "tbaad: usage error: %s\n" first_line;
    exit 2
  | Error `Exn ->
    Format.pp_print_flush err ();
    prerr_string (Buffer.contents buf);
    exit 125
