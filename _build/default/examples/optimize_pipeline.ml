(* The full whole-program-optimizer pipeline on a real workload.

   Takes the k-tree benchmark from the built-in suite and walks the same
   steps the experiment harness uses: lower, analyze, devirtualize +
   inline, re-analyze, RLE, baseline local CSE — reporting what each pass
   did and how the simulated machine numbers move.

     dune exec examples/optimize_pipeline.exe *)

let describe label (o : Sim.Interp.outcome) =
  Printf.printf "%-24s %9d instrs  %8d heap loads  %9d cycles\n" label
    o.Sim.Interp.counters.Sim.Interp.instrs
    o.Sim.Interp.counters.Sim.Interp.heap_loads o.Sim.Interp.cycles

let () =
  let w = Workloads.Suite.find "ktree" in
  Printf.printf "workload: %s — %s (%d source lines)\n\n" w.Workloads.Workload.name
    w.Workloads.Workload.description
    (Workloads.Workload.source_lines w);

  (* Base: what GCC-with-standard-optimizations would see. *)
  let base = Workloads.Workload.lower w in
  ignore (Opt.Local_cse.run base);
  let base_out = Sim.Interp.run base in
  describe "base" base_out;

  (* Step 1: method invocation resolution + inlining. *)
  let program = Workloads.Workload.lower w in
  let pre = Tbaa.Analysis.analyze program in
  let d = Opt.Devirt.run program ~type_refs:pre.Tbaa.Analysis.type_refs_table in
  let i = Opt.Inline.run program in
  Printf.printf "\ndevirt: %d resolved, %d left virtual; inlined %d sites\n"
    d.Opt.Devirt.resolved d.Opt.Devirt.unresolved i.Opt.Inline.inlined;

  (* Step 2: re-analyze the transformed program and run RLE. *)
  let analysis = Tbaa.Analysis.analyze program in
  let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
  let stats = Opt.Rle.run program oracle in
  Printf.printf "RLE: %d hoisted, %d eliminated, %d shortened\n\n"
    stats.Opt.Rle.hoisted stats.Opt.Rle.eliminated stats.Opt.Rle.shortened;

  (* Step 3: the GCC-like baseline runs over everything. *)
  ignore (Opt.Local_cse.run program);
  let opt_out = Sim.Interp.run program in
  describe "optimized" opt_out;

  Printf.printf "\nrunning time: %.1f%% of base; output unchanged: %b\n"
    (100.0
    *. float_of_int opt_out.Sim.Interp.cycles
    /. float_of_int base_out.Sim.Interp.cycles)
    (String.equal base_out.Sim.Interp.output opt_out.Sim.Interp.output)
