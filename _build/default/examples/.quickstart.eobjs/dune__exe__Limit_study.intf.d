examples/limit_study.mli:
