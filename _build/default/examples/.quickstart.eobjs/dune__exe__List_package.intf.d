examples/list_package.mli:
