examples/quickstart.mli:
