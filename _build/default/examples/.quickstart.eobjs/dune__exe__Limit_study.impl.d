examples/limit_study.ml: Ir List Opt Printf Sim Support Tbaa Workloads
