examples/list_package.ml: Ir List Lower Opt Printf Sim String Tbaa
