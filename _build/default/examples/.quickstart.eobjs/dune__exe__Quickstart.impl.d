examples/quickstart.ml: Apath Cfg Ident Ir List Lower Minim3 Printf Reg Sim String Support Tbaa Types
