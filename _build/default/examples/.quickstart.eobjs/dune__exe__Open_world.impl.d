examples/open_world.ml: Ir List Lower Opt Printf Sim Tbaa
