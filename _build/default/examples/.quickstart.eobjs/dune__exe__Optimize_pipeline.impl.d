examples/optimize_pipeline.ml: Opt Printf Sim String Tbaa Workloads
