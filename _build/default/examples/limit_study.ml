(* The limit study (paper §3.5) on one program, step by step.

   Runs slisp under the ATOM-style tracer before and after TBAA+RLE,
   prints the redundancy fractions (one row of Figure 9), classifies
   what remains (one row of Figure 10), and names the top offending
   static sites — the kind of digging the authors did by hand to produce
   their Encapsulation/Conditional/Breakup taxonomy.

     dune exec examples/limit_study.exe *)

let trace ~optimize w =
  let program = Workloads.Workload.lower w in
  let analysis = Tbaa.Analysis.analyze program in
  let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
  if optimize then ignore (Opt.Rle.run program oracle);
  ignore (Opt.Local_cse.run program);
  let tracer = Sim.Limit.create () in
  let _ = Sim.Interp.run ~on_load:(Sim.Limit.on_load tracer) program in
  (program, oracle, tracer)

let describe_site (s : Sim.Interp.site) =
  let where =
    Printf.sprintf "%s B%d#%d"
      (Support.Ident.name s.Sim.Interp.site_proc)
      s.Sim.Interp.site_block s.Sim.Interp.site_index
  in
  match s.Sim.Interp.site_kind with
  | Sim.Interp.Sexplicit (ap, k) ->
    Printf.sprintf "%-22s load %s (prefix %d)" where (Ir.Apath.to_string ap) k
  | Sim.Interp.Sdope ap ->
    Printf.sprintf "%-22s dope of %s" where (Ir.Apath.to_string ap)
  | Sim.Interp.Snumber -> Printf.sprintf "%-22s NUMBER dope" where
  | Sim.Interp.Sdispatch -> Printf.sprintf "%-22s dispatch header" where

let () =
  let w = Workloads.Suite.find "slisp" in
  Printf.printf "limit study: %s\n\n" w.Workloads.Workload.name;

  let _, _, before = trace ~optimize:false w in
  let program, oracle, after = trace ~optimize:true w in
  let original = float_of_int (Sim.Limit.total_heap_loads before) in

  Printf.printf "heap loads (original run):   %d\n"
    (Sim.Limit.total_heap_loads before);
  Printf.printf "dynamically redundant:       %d (%.1f%%)\n"
    (Sim.Limit.total_redundant before)
    (100.0 *. float_of_int (Sim.Limit.total_redundant before) /. original);
  Printf.printf "redundant after TBAA+RLE:    %d (%.1f%% of original)\n\n"
    (Sim.Limit.total_redundant after)
    (100.0 *. float_of_int (Sim.Limit.total_redundant after) /. original);

  (* Classify the residual (one row of Figure 10). *)
  let modref = Opt.Modref.compute program oracle in
  let breakdown = Sim.Classify.classify program oracle modref after in
  print_endline "residual classification:";
  List.iter
    (fun (cat, n) ->
      Printf.printf "  %-14s %6d  (%.3f of original heap loads)\n"
        (Sim.Classify.category_to_string cat)
        n
        (float_of_int n /. original))
    breakdown;

  (* The hottest residual sites. *)
  print_endline "\ntop redundant sites after optimization:";
  let sites =
    List.sort
      (fun (a : Sim.Limit.site_stat) b ->
        compare b.Sim.Limit.ss_redundant a.Sim.Limit.ss_redundant)
      (Sim.Limit.sites after)
  in
  List.iteri
    (fun i (s : Sim.Limit.site_stat) ->
      if i < 6 && s.Sim.Limit.ss_redundant > 0 then
        Printf.printf "  %6d/%6d  %s\n" s.Sim.Limit.ss_redundant
          s.Sim.Limit.ss_loads
          (describe_site s.Sim.Limit.ss_site))
    sites
