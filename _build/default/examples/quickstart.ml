(* Quickstart: the paper's Section 2 worked example, end to end.

   Builds the Figure 1 type hierarchy and the Figure 3 assignment program,
   runs the three alias analyses, prints the TypeRefsTable (the paper's
   Table 3), and answers a few may-alias queries under each analysis.

     dune exec examples/quickstart.exe *)

open Support
open Minim3
open Ir

let source =
  {|
MODULE Figure3;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT END;
  S2 = T OBJECT END;
  S3 = T OBJECT END;
VAR
  s1: S1;
  s2: S2;
  s3: S3;
  t: T;

PROCEDURE Touch () =
  VAR x: T;
  BEGIN
    x := t.f;    (* reference 0 *)
    x := s1.f;   (* reference 1 *)
    x := s3.f;   (* reference 2 *)
    x := t.g;    (* reference 3 *)
  END Touch;

BEGIN
  s1 := NEW (S1);
  s2 := NEW (S2);
  s3 := NEW (S3);
  t := s1; (* Statement 1 *)
  t := s2; (* Statement 2 *)
  Touch ();
END Figure3.
|}

let () =
  (* 1. Front end: parse, typecheck, lower to the IR. *)
  let program = Lower.lower_string ~file:"figure3" source in
  (* 2. Analyze: collect facts once, build the three oracles. *)
  let analysis = Tbaa.Analysis.analyze program in
  let tenv = analysis.Tbaa.Analysis.facts.Tbaa.Facts.tenv in

  (* 3. The TypeRefsTable — this is the paper's Table 3. *)
  print_endline "TypeRefsTable (paper Table 3):";
  List.iter
    (fun name ->
      let tid =
        (List.find
           (fun (g : Reg.var) -> Ident.name g.Reg.v_name = name)
           program.Cfg.prog_globals)
          .Reg.v_ty
      in
      Printf.printf "  %-3s -> { %s }\n" (String.uppercase_ascii name)
        (String.concat ", "
           (List.map (Types.to_string tenv) (analysis.Tbaa.Analysis.type_refs_table tid))))
    [ "t"; "s1"; "s2"; "s3" ];

  (* 4. May-alias queries over the references in Touch. *)
  let refs =
    List.filter_map
      (fun (r : Tbaa.Facts.memref) ->
        if Ident.name r.Tbaa.Facts.mr_proc = "Touch" then Some r.Tbaa.Facts.mr_path
        else None)
      analysis.Tbaa.Analysis.facts.Tbaa.Facts.memrefs
  in
  let r i = List.nth refs i in
  let query name a b =
    Printf.printf "  %-30s" (Printf.sprintf "%s ~ %s ?" (Apath.to_string a) (Apath.to_string b));
    List.iter
      (fun (o : Tbaa.Oracle.t) ->
        Printf.printf "  %s=%b" o.Tbaa.Oracle.name (o.Tbaa.Oracle.may_alias a b))
      (Tbaa.Analysis.oracles analysis);
    print_newline ();
    ignore name
  in
  print_endline "\nMay-alias queries:";
  query "t.f vs s1.f" (r 0) (r 1);
  query "t.f vs s3.f" (r 0) (r 2);
  query "t.f vs t.g" (r 0) (r 3);

  (* 5. Run the program on the simulator. *)
  let outcome = Sim.Interp.run program in
  Printf.printf
    "\nSimulated run: %d instructions, %d heap loads, %d cycles\n"
    outcome.Sim.Interp.counters.Sim.Interp.instrs
    outcome.Sim.Interp.counters.Sim.Interp.heap_loads
    outcome.Sim.Interp.cycles
