(* The paper's Section 2.4 motivation: types are usually used far below
   their full generality, and watching the program's assignments proves it.

   Two scenarios, each run under all three analyses:
   - unrelated object types (FieldTypeDecl already separates the fields);
   - a subtype that is *declared* but never assigned into its supertype —
     only SMFieldTypeRefs keeps the load in a register across the update,
     because only it knows a Node-typed path cannot reach a Special.

     dune exec examples/list_package.exe *)

open Ir

let real_source =
  {|
MODULE ListPackage;
TYPE
  Node = OBJECT weight: INTEGER; next: Node; END;
  Counter = OBJECT clicks: INTEGER; END;
VAR
  basket: Node;
  clicker: Counter;
  sum: INTEGER;

PROCEDURE AddApple (w: INTEGER) =
  VAR n: Node;
  BEGIN
    n := NEW (Node);
    n.weight := w;
    n.next := basket;
    basket := n;
  END AddApple;

PROCEDURE WeighTwice () =
  VAR w1: INTEGER; w2: INTEGER;
  BEGIN
    w1 := basket.weight;
    clicker.clicks := clicker.clicks + 1;  (* cannot alias basket.weight *)
    w2 := basket.weight;                   (* redundant — if we can prove it *)
    sum := sum + w1 + w2;
  END WeighTwice;

BEGIN
  clicker := NEW (Counter);
  FOR i := 1 TO 40 DO
    AddApple (i);
  END;
  FOR i := 1 TO 200 DO
    WeighTwice ();
  END;
  PrintInt (sum); PrintLn ();
END ListPackage.
|}

let () =
  print_endline "List-package example (paper §2.4 motivation)\n";
  List.iter
    (fun kind ->
      let program = Lower.lower_string ~file:"list_package" real_source in
      let analysis = Tbaa.Analysis.analyze program in
      let oracle = Opt.Pipeline.select analysis kind in
      let stats = Opt.Rle.run program oracle in
      let outcome = Sim.Interp.run program in
      Printf.printf
        "%-16s removed %d loads statically; dynamic heap loads: %d (output %s)\n"
        (Opt.Pipeline.oracle_name kind)
        (Opt.Rle.removed stats)
        outcome.Sim.Interp.counters.Sim.Interp.heap_loads
        (String.trim outcome.Sim.Interp.output))
    [ Opt.Pipeline.Otype_decl; Opt.Pipeline.Ofield_type_decl;
      Opt.Pipeline.Osm_field_type_refs ];
  print_endline
    "\nFieldTypeDecl already separates the two *fields*; try making the\n\
     counter a Node to see SMFieldTypeRefs earn its keep:";
  let tricky =
    {|
MODULE Tricky;
TYPE
  Node = OBJECT weight: INTEGER; next: Node; END;
  Special = Node OBJECT END;
VAR
  basket: Node;
  special: Special;
  sum: INTEGER;
PROCEDURE WeighTwice () =
  VAR w1: INTEGER; w2: INTEGER;
  BEGIN
    w1 := basket.weight;
    special.weight := special.weight + 1;
    w2 := basket.weight;
    sum := sum + w1 + w2;
  END WeighTwice;
BEGIN
  basket := NEW (Node);
  special := NEW (Special);
  FOR i := 1 TO 200 DO
    WeighTwice ();
  END;
  PrintInt (sum); PrintLn ();
END Tricky.
|}
  in
  List.iter
    (fun kind ->
      let program = Lower.lower_string ~file:"tricky" tricky in
      let analysis = Tbaa.Analysis.analyze program in
      let stats = Opt.Rle.run program (Opt.Pipeline.select analysis kind) in
      Printf.printf "%-16s removed %d loads statically\n"
        (Opt.Pipeline.oracle_name kind)
        (Opt.Rle.removed stats))
    [ Opt.Pipeline.Otype_decl; Opt.Pipeline.Ofield_type_decl;
      Opt.Pipeline.Osm_field_type_refs ]
