(* Analyzing incomplete programs (the paper's Section 4).

   A "library" is analyzed without its clients. Under the open-world
   assumption the analysis must assume that unavailable type-safe code may
   pass anything of a by-reference formal's type by reference, and may
   reconstruct and assign between any unbranded subtype-related types —
   but BRANDED types keep their privacy, so declaring the internal node
   type BRANDED recovers the closed-world precision.

     dune exec examples/open_world.exe *)

open Ir

let library ~branded =
  Printf.sprintf
    {|
MODULE Cache;
TYPE
  Entry = OBJECT key, value: INTEGER; next: Entry; END;
  (* Only ever used through HotEntry-typed paths; never assigned into an
     Entry-typed location. *)
  HotEntry = %sEntry OBJECT stamp: INTEGER; END;
  Stat = RECORD hits, misses: INTEGER; END;
  PS = REF Stat;
VAR
  table: Entry;
  stats: PS;

PROCEDURE Bump (VAR slot: INTEGER) =
  BEGIN
    slot := slot + 1;
  END Bump;

PROCEDURE Find (key: INTEGER): INTEGER =
  VAR e: Entry;
  BEGIN
    e := table;
    WHILE e # NIL DO
      IF e.key = key THEN
        Bump (stats.hits);
        RETURN e.value;
      END;
      e := e.next;
    END;
    Bump (stats.misses);
    RETURN -1;
  END Find;

PROCEDURE Promote (h: HotEntry) =
  BEGIN
    h.stamp := h.stamp + 1;
    h.value := h.value * 2;
  END Promote;

PROCEDURE Insert (key: INTEGER; value: INTEGER) =
  VAR e: Entry;
  BEGIN
    e := NEW (Entry);
    e.key := key;
    e.value := value;
    e.next := table;
    table := e;
  END Insert;

BEGIN
  stats := NEW (PS);
  WITH hot = NEW (HotEntry) DO
    hot.key := 999;
    Promote (hot);
    PrintInt (hot.value); PrintLn ();
  END;
  FOR i := 1 TO 60 DO
    Insert (i * 3, i);
  END;
  FOR i := 1 TO 200 DO
    PrintInt (Find (i)); PrintChar (' ');
  END;
  PrintLn ();
  PrintInt (stats.hits); PrintChar ('/'); PrintInt (stats.misses); PrintLn ();
END Cache.
|}
    (if branded then "BRANDED \"hot-entry\" " else "")

let report ~branded =
  Printf.printf "--- HotEntry %s ---\n"
    (if branded then "BRANDED" else "unbranded");
  List.iter
    (fun world ->
      let program = Lower.lower_string ~file:"cache" (library ~branded) in
      let analysis = Tbaa.Analysis.analyze ~world program in
      let oracle = analysis.Tbaa.Analysis.sm_field_type_refs in
      let pairs = Tbaa.Alias_pairs.count oracle analysis.Tbaa.Analysis.facts in
      let stats = Opt.Rle.run program oracle in
      let outcome = Sim.Interp.run program in
      Printf.printf
        "%-6s world: %3d local / %3d global alias pairs; RLE removed %d; \
         heap loads %d\n"
        (Tbaa.World.to_string world)
        pairs.Tbaa.Alias_pairs.local_pairs pairs.Tbaa.Alias_pairs.global_pairs
        (Opt.Rle.removed stats)
        outcome.Sim.Interp.counters.Sim.Interp.heap_loads)
    [ Tbaa.World.Closed; Tbaa.World.Open ]

let () =
  print_endline "Open-world analysis of a library without its clients (§4)\n";
  report ~branded:false;
  print_newline ();
  report ~branded:true
