(** Classification of the redundant loads that remain after TBAA + RLE
    (paper §3.5, Figure 10).

    - {b Encapsulated}: the load is implicit in the high-level IR — an
      open-array dope read, NUMBER, or a dispatch-table read — so RLE
      never saw an access path to eliminate.
    - {b Conditional}: the load's expression is partially redundant —
      available along some paths to the site but not all (may-available
      under the oracle, hence out of reach of RLE's full-redundancy CSE;
      partial redundancy elimination would catch it).
    - {b Breakup}: the same address was last loaded through a
      syntactically different access path (the value flowed through
      variables); copy propagation would be needed to connect them.
    - {b Alias}: the expression would have been (fully) available under a
      perfect alias analysis — one that never lets a store or a call kill
      it — but TBAA's may-alias kills blocked it. This is the paper's
      "alias failure" bucket, the true imprecision of TBAA.
    - {b Rest}: everything else. *)

open Tbaa

type category = Encapsulated | Conditional | Breakup | Alias | Rest

val category_to_string : category -> string
val all_categories : category list

type breakdown = (category * int) list
(** Dynamic count of remaining redundant loads per category (all
    categories present, possibly with zero counts). *)

val classify :
  Ir.Cfg.program -> Oracle.t -> Opt.Modref.t -> Limit.t -> breakdown
