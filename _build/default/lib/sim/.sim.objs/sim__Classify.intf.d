lib/sim/classify.mli: Ir Limit Opt Oracle Tbaa
