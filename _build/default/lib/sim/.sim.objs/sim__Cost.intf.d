lib/sim/cost.mli:
