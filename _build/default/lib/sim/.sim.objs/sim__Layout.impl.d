lib/sim/layout.ml: Array Hashtbl Ident List Minim3 Support Types
