lib/sim/interp.mli: Apath Cfg Ident Ir Support Value
