lib/sim/cost.ml:
