lib/sim/limit.mli: Interp
