lib/sim/layout.mli: Ident Minim3 Support Types
