lib/sim/value.ml: Format Minim3
