lib/sim/cache.mli:
