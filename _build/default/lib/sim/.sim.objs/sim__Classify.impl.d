lib/sim/classify.ml: Apath Array Bitset Cfg Dataflow Hashtbl Ident Instr Interp Ir Limit List Minim3 Opt Option Reg Support Vec
