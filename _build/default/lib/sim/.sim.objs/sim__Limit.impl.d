lib/sim/limit.ml: Hashtbl Interp Ir List Value
