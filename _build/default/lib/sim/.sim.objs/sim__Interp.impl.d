lib/sim/interp.ml: Apath Array Ast Buffer Cache Cfg Char Cost Hashtbl Ident Instr Ir Layout List Minim3 Option Reg Support Tast Types Value Vec
