(** Alpha-21064-flavoured cycle costs.

    Absolute fidelity is not the goal (the paper reports percentages of a
    base run, not cycles); what matters is the relative weight of memory
    traffic versus everything else: loads dominate, misses are an order of
    magnitude above hits, and register-to-register moves are free (the
    paper's back end runs GCC's register allocator, which coalesces the
    copies RLE introduces). *)

val move : int  (** register copy — coalesced away *)

val alu : int
val branch : int
val jump : int
val load_hit : int
val load_miss : int
val store_hit : int
val store_miss : int
val addr : int  (** address materialization *)

val call : int  (** direct-call overhead, plus {!arg} per argument *)

val arg : int
val dispatch : int  (** extra indirection of a virtual call *)

val ret : int
val alloc_base : int  (** allocator fast path *)

val alloc_per_slot : int
val builtin_io : int  (** one Print* call *)

val builtin_pure : int  (** Ord/Chr/Abs/Min/Max/Number *)
