(** Memory layout of MiniM3 types in the simulator.

    Every scalar occupies one word-sized slot. Records lay fields out
    consecutively, inlining aggregate fields. Objects carry one hidden
    header slot (the type tag used for dynamic dispatch) followed by all
    fields, inherited first. Open arrays exist only behind REF and are laid
    out as a one-slot dope (the element count) followed by the elements —
    the dope read on every subscript is the paper's "Encapsulation" source
    of irreducible redundant loads. *)

open Support
open Minim3

type t

val create : Types.env -> t

val size : t -> Types.tid -> int
(** Slots occupied by a value of this type stored inline. Open arrays and
    the unit type have no inline size; asking for one is a bug. *)

val field_offset : t -> Types.tid -> Ident.t -> int
(** Offset of a field within a record (from slot 0) or an object (from the
    block start, i.e. already including the header slot). *)

val alloc_size : t -> Types.tid -> length:int option -> int
(** Slots to allocate for [NEW] of a REF/object type: the referent size,
    plus header for objects, plus dope for open arrays (whose [length]
    must be given). *)

val object_header : int
(** Number of hidden slots at the start of every object block. *)

val open_array_dope : int
(** Number of dope slots at the start of every open-array block. *)
