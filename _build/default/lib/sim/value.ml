(* Runtime values. Pointers are addresses into the simulator's two address
   spaces: non-negative addresses live in the static space (globals and
   stack-resident locals), negative addresses encode heap slots. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vchar of char
  | Vnil
  | Vaddr of int

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vchar x, Vchar y -> x = y
  | Vnil, Vnil -> true
  | Vaddr x, Vaddr y -> x = y
  | (Vint _ | Vbool _ | Vchar _ | Vnil | Vaddr _), _ -> false

let pp ppf = function
  | Vint n -> Format.pp_print_int ppf n
  | Vbool b -> Format.pp_print_bool ppf b
  | Vchar c -> Format.fprintf ppf "'%c'" c
  | Vnil -> Format.pp_print_string ppf "NIL"
  | Vaddr a -> Format.fprintf ppf "@%d" a

let to_string v = Format.asprintf "%a" pp v

(* Default value for a freshly allocated location of the given type. *)
let default env (tid : Minim3.Types.tid) =
  match Minim3.Types.desc env tid with
  | Minim3.Types.Dint -> Vint 0
  | Minim3.Types.Dbool -> Vbool false
  | Minim3.Types.Dchar -> Vchar '\000'
  | _ -> Vnil
