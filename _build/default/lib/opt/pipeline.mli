(** The whole-program-optimizer pipeline, mirroring the paper's WPO.

    Order of passes, when enabled: method invocation resolution (devirt,
    using the TypeRefsTable), inlining, then — over *re-collected* facts,
    since inlining changes the program — redundant load elimination with
    the chosen alias oracle. *)

open Tbaa

type oracle_kind = Otype_decl | Ofield_type_decl | Osm_field_type_refs

type config = {
  oracle_kind : oracle_kind;
  world : World.t;
  devirt_inline : bool;  (* paper's "Minv + Inlining" leg *)
  rle : bool;
  pre : bool;  (* partial redundancy elimination (paper's future work) *)
  copyprop : bool;  (* copy propagation + a second RLE pass *)
}

type result = {
  analysis : Analysis.t;  (* analysis of the final program *)
  rle_stats : Rle.stats option;
  devirt_stats : Devirt.stats option;
  inline_stats : Inline.stats option;
  pre_stats : Pre.stats option;
  copyprop_stats : Copyprop.stats option;
}

val oracle_name : oracle_kind -> string

val select : Analysis.t -> oracle_kind -> Oracle.t

val run : Ir.Cfg.program -> config -> result
(** Mutates [program] in place. *)

val default : config
(** SMFieldTypeRefs + RLE, closed world, no inlining — the paper's primary
    configuration. *)
