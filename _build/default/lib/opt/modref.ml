open Support
open Ir
open Tbaa

type summary = { mods : Aloc.Set.t; refs : Aloc.Set.t }

type t = {
  program : Cfg.program;
  summaries : (Ident.t, summary) Hashtbl.t;
  kill_all : bool;
}

let empty = { mods = Aloc.Set.empty; refs = Aloc.Set.empty }

(* Direct (one-procedure) effects. A register assignment is externally
   visible only when the target is a global or a variable whose address
   escaped. *)
let direct_summary (oracle : Oracle.t) proc =
  let mods = ref Aloc.Set.empty and refs = ref Aloc.Set.empty in
  Cfg.iter_instrs proc (fun _ instr ->
      match instr with
      | Instr.Istore (ap, _) ->
        mods := Aloc.Set.add (oracle.Oracle.store_class ap) !mods
      | Instr.Iload (_, ap) ->
        refs := Aloc.Set.add (oracle.Oracle.store_class ap) !refs
      | Instr.Iassign (v, _) | Instr.Inew (v, _, _) ->
        if
          v.Reg.v_kind = Reg.Vglobal || oracle.Oracle.addr_taken_var v
        then mods := Aloc.Set.add (Aloc.Lvar (v.Reg.v_id, v.Reg.v_ty)) !mods
      | Instr.Iaddr _ | Instr.Icall _ -> ()
      | Instr.Ibuiltin (Some v, _, _) ->
        if v.Reg.v_kind = Reg.Vglobal || oracle.Oracle.addr_taken_var v then
          mods := Aloc.Set.add (Aloc.Lvar (v.Reg.v_id, v.Reg.v_ty)) !mods
      | Instr.Ibuiltin (None, _, _) -> ());
  (* Reads of globals also count as refs. *)
  Cfg.iter_instrs proc (fun _ instr ->
      List.iter
        (fun v ->
          if v.Reg.v_kind = Reg.Vglobal then
            refs := Aloc.Set.add (Aloc.Lvar (v.Reg.v_id, v.Reg.v_ty)) !refs)
        (Instr.vars_used instr));
  { mods = !mods; refs = !refs }

let compute program oracle =
  let closure = Callgraph.transitive_closure program in
  let direct = Hashtbl.create 32 in
  List.iter
    (fun proc ->
      Hashtbl.replace direct proc.Cfg.pr_name (direct_summary oracle proc))
    program.Cfg.prog_procs;
  let summaries = Hashtbl.create 32 in
  List.iter
    (fun proc ->
      let name = proc.Cfg.pr_name in
      let reach =
        Ident.Set.add name
          (Option.value (Hashtbl.find_opt closure name) ~default:Ident.Set.empty)
      in
      let merged =
        Ident.Set.fold
          (fun callee acc ->
            match Hashtbl.find_opt direct callee with
            | Some s ->
              { mods = Aloc.Set.union acc.mods s.mods;
                refs = Aloc.Set.union acc.refs s.refs }
            | None -> acc)
          reach empty
      in
      Hashtbl.replace summaries name merged)
    program.Cfg.prog_procs;
  { program; summaries; kill_all = false }

let conservative program =
  { program; summaries = Hashtbl.create 1; kill_all = true }

let summary t name = Option.value (Hashtbl.find_opt t.summaries name) ~default:empty

let call_kills t (oracle : Oracle.t) target ap =
  if t.kill_all then true
  else
  let callees = Callgraph.callees_of_target t.program target in
  let prefixes = Apath.prefixes ap in
  let base = Apath.of_var ap.Apath.base in
  List.exists
    (fun callee ->
      let s = summary t callee in
      Aloc.Set.exists
        (fun cls ->
          List.exists (fun p -> oracle.Oracle.class_kills cls p) (base :: prefixes))
        s.mods)
    callees
