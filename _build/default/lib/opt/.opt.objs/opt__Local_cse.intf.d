lib/opt/local_cse.mli: Ir
