lib/opt/inline.ml: Apath Ast Callgraph Cfg Hashtbl Ident Instr Ir List Minim3 Option Reg Support Vec
