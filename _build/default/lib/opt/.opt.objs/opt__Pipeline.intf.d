lib/opt/pipeline.mli: Analysis Copyprop Devirt Inline Ir Oracle Pre Rle Tbaa World
