lib/opt/pipeline.ml: Analysis Copyprop Devirt Inline Pre Rle Tbaa World
