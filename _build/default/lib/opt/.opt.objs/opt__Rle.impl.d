lib/opt/rle.ml: Aloc Apath Array Bitset Cfg Dataflow Dom Instr Ir List Loops Minim3 Modref Oracle Reg Support Tbaa Types Vec
