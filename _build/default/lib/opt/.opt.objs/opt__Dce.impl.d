lib/opt/dce.ml: Apath Array Bitset Cfg Dataflow Hashtbl Instr Ir List Option Reg Support Vec
