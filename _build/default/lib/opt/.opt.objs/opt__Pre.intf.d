lib/opt/pre.mli: Ir Modref Oracle Tbaa
