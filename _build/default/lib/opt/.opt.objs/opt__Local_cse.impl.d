lib/opt/local_cse.ml: Apath Cfg Instr Ir List Minim3 Reg Support Types Vec
