lib/opt/modref.ml: Aloc Apath Callgraph Cfg Hashtbl Ident Instr Ir List Option Oracle Reg Support Tbaa
