lib/opt/devirt.ml: Cfg Ident Instr Ir List Minim3 Support Types Vec
