lib/opt/modref.mli: Aloc Ident Ir Oracle Support Tbaa
