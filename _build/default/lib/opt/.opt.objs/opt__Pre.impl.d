lib/opt/pre.ml: Apath Array Bitset Cfg Dataflow Dom Hashtbl Instr Ir List Minim3 Modref Option Reg Rle Support Types Vec
