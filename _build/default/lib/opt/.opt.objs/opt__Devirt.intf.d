lib/opt/devirt.mli: Ir Minim3 Types
