lib/opt/rle.mli: Ir Modref Oracle Tbaa
