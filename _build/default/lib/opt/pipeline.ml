open Tbaa

type oracle_kind = Otype_decl | Ofield_type_decl | Osm_field_type_refs

type config = {
  oracle_kind : oracle_kind;
  world : World.t;
  devirt_inline : bool;
  rle : bool;
  pre : bool;
  copyprop : bool;
}

type result = {
  analysis : Analysis.t;
  rle_stats : Rle.stats option;
  devirt_stats : Devirt.stats option;
  inline_stats : Inline.stats option;
  pre_stats : Pre.stats option;
  copyprop_stats : Copyprop.stats option;
}

let oracle_name = function
  | Otype_decl -> "TypeDecl"
  | Ofield_type_decl -> "FieldTypeDecl"
  | Osm_field_type_refs -> "SMFieldTypeRefs"

let select (a : Analysis.t) = function
  | Otype_decl -> a.Analysis.type_decl
  | Ofield_type_decl -> a.Analysis.field_type_decl
  | Osm_field_type_refs -> a.Analysis.sm_field_type_refs

let default =
  { oracle_kind = Osm_field_type_refs; world = World.Closed;
    devirt_inline = false; rle = true; pre = false; copyprop = false }

let run program config =
  let devirt_stats, inline_stats =
    if config.devirt_inline then begin
      let pre = Analysis.analyze ~world:config.world program in
      let ds = Devirt.run program ~type_refs:pre.Analysis.type_refs_table in
      let is = Inline.run program in
      (* Inlining exposes receivers with narrower type contexts; resolving
         again is cheap and is what the paper's Minv+Inlining leg does. *)
      let post = Analysis.analyze ~world:config.world program in
      let ds2 = Devirt.run program ~type_refs:post.Analysis.type_refs_table in
      ds.Devirt.resolved <- ds.Devirt.resolved + ds2.Devirt.resolved;
      (Some ds, Some is)
    end
    else (None, None)
  in
  let analysis = Analysis.analyze ~world:config.world program in
  let oracle = select analysis config.oracle_kind in
  let pre_stats =
    if config.pre then Some (Pre.run program oracle) else None
  in
  let rle_stats =
    if config.rle then Some (Rle.run program oracle) else None
  in
  let copyprop_stats =
    if config.copyprop then begin
      let cp = Copyprop.run program in
      (* a second RLE harvest over the canonicalized paths *)
      if config.rle then begin
        let again = Rle.run program oracle in
        match rle_stats with
        | Some s ->
          s.Rle.hoisted <- s.Rle.hoisted + again.Rle.hoisted;
          s.Rle.eliminated <- s.Rle.eliminated + again.Rle.eliminated;
          s.Rle.shortened <- s.Rle.shortened + again.Rle.shortened
        | None -> ()
      end;
      Some cp
    end
    else None
  in
  { analysis; rle_stats; devirt_stats; inline_stats; pre_stats; copyprop_stats }
