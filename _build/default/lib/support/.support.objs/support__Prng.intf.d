lib/support/prng.mli:
