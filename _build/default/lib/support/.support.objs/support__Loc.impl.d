lib/support/loc.ml: Format Int String
