lib/support/bitset.ml: Bytes Char Format List
