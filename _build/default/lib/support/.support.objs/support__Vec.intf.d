lib/support/vec.mli:
