lib/support/table.mli:
