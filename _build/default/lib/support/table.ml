type align = Left | Right

type row = Cells of string list | Rule

type t = { headers : string list; ncols : int; mutable rows : row list }

let create ~headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.ncols
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '%' || c = ',')
       s

let render ?aligns t =
  let rows = List.rev t.rows in
  let cell_rows = List.filter_map (function Cells c -> Some c | Rule -> None) rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (fun cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    cell_rows;
  let aligns =
    match aligns with
    | Some a when List.length a = t.ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None ->
      (* A column is right-aligned when all its body cells look numeric. *)
      Array.init t.ncols (fun i ->
          let numeric =
            cell_rows <> []
            && List.for_all (fun cells -> looks_numeric (List.nth cells i)) cell_rows
          in
          if numeric then Right else Left)
  in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    match aligns.(i) with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (t.ncols - 1))
  in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule ()) rows;
  Buffer.contents buf

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct r = Printf.sprintf "%.1f%%" (100.0 *. r)
