type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }
let size t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end

let same t a b = find t a = find t b

let group t x =
  let root = find t x in
  let acc = ref [] in
  for i = size t - 1 downto 0 do
    if find t i = root then acc := i :: !acc
  done;
  !acc

let groups t =
  let by_root = Hashtbl.create 16 in
  for i = size t - 1 downto 0 do
    let r = find t i in
    let members = Option.value (Hashtbl.find_opt by_root r) ~default:[] in
    Hashtbl.replace by_root r (i :: members)
  done;
  let reps = ref [] in
  for i = size t - 1 downto 0 do
    if find t i = i then reps := i :: !reps
  done;
  List.map (fun r -> Hashtbl.find by_root r) !reps

let copy t = { parent = Array.copy t.parent; rank = Array.copy t.rank }
