(** ASCII table rendering for the experiment harness.

    Every paper table/figure is re-emitted as rows of cells; this module
    lines columns up so the bench output is readable in a terminal and easy
    to diff across runs. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table whose column count is fixed by [headers]. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on column-count mismatch. *)

val add_rule : t -> unit
(** Append a horizontal separator. *)

val render : ?aligns:align list -> t -> string
(** Render with one space of padding; numeric-looking columns default to
    right alignment unless [aligns] overrides. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a table cell (default 2 decimals). *)

val cell_pct : float -> string
(** Format a ratio [0..1] as a percentage with one decimal. *)
