(** Imperative union-find with path compression and union by rank.

    This is the engine behind SMTypeRefs' selective type merging (Figure 2 of
    the paper): each element is a type id, and every pointer assignment
    [a := b] with [Type a <> Type b] unions the two types' sets. *)

type t

val create : int -> t
(** [create n] makes a structure over elements [0 .. n-1], each in its own
    singleton set. *)

val size : t -> int
(** Number of elements. *)

val find : t -> int -> int
(** Canonical representative of an element's set. Compresses paths. *)

val union : t -> int -> int -> unit
(** Merge the two elements' sets. No-op when already joined. *)

val same : t -> int -> int -> bool
(** [same t a b] iff [a] and [b] are in one set. *)

val group : t -> int -> int list
(** All elements of [x]'s set, ascending. O(n) — fine for the type-table
    sizes the analysis sees. *)

val groups : t -> int list list
(** All equivalence classes, each ascending, ordered by representative. *)

val copy : t -> t
(** Independent snapshot; mutations on either side are invisible to the
    other. Used to compare closed-world and open-world merge states. *)
