type t = { file : string; line : int; col : int }

let dummy = { file = "<synthetic>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.line t.col
let to_string t = Format.asprintf "%a" pp t

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col
