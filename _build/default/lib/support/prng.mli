(** Deterministic pseudo-random numbers (the xorshift64-star generator).

    The property-based program generator and the synthetic scaling workloads
    need reproducible randomness that does not depend on the stdlib [Random]
    state shared with test frameworks. *)

type t

val create : int64 -> t
(** Seeded generator; a zero seed is remapped to a fixed nonzero constant. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]; requires [bound > 0]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
