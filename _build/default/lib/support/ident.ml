type t = { name : string; id : int }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let counter = ref 0

let intern name =
  match Hashtbl.find_opt table name with
  | Some t -> t
  | None ->
    let t = { name; id = !counter } in
    incr counter;
    Hashtbl.add table name t;
    t

let name t = t.name
let id t = t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id
let pp ppf t = Format.pp_print_string ppf t.name

let fresh_counter = ref 0

let rec fresh base =
  incr fresh_counter;
  let candidate = Printf.sprintf "%s$%d" base !fresh_counter in
  if Hashtbl.mem table candidate then fresh base else intern candidate

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
