(** Source locations for MiniM3 programs.

    A location is a [line, column] pair pointing into a named compilation
    unit; a span covers a half-open range of characters. Locations are only
    used for diagnostics, never for semantics. *)

type t = {
  file : string;  (** compilation unit name *)
  line : int;  (** 1-based line *)
  col : int;  (** 1-based column *)
}

val dummy : t
(** Placeholder for synthesized nodes. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
(** Renders as ["file:line:col"]. *)

val to_string : t -> string

val compare : t -> t -> int
