type t = { mutable state : int64 }

let create seed =
  { state = (if Int64.equal seed 0L then 0x9E3779B97F4A7C15L else seed) }

let next t =
  (* xorshift64*: good enough statistical quality for workload generation. *)
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
