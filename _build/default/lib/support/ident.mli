(** Interned identifiers.

    Identifiers are hash-consed strings: interning the same string twice
    yields the same [t], so equality and comparison are O(1) integer
    operations. The front end interns every name it sees (variables, fields,
    types, procedures, methods); all later phases compare idents, never
    strings. *)

type t

val intern : string -> t
(** [intern s] returns the unique ident for [s]. *)

val name : t -> string
(** The original spelling. *)

val id : t -> int
(** The dense intern index (stable within a process). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val fresh : string -> t
(** [fresh base] makes an ident guaranteed distinct from every ident
    interned so far, spelled [base$k] for some [k]. Used for compiler
    temporaries. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
