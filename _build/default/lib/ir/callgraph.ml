open Support
open Minim3

let callees_of_target program = function
  | Instr.Cdirect p -> [ p ]
  | Instr.Cvirtual (m, recv_ty) ->
    let tenv = program.Cfg.tenv in
    Types.subtypes tenv recv_ty
    |> List.filter_map (fun t ->
           if Types.is_object tenv t then Types.method_impl tenv t m else None)
    |> List.sort_uniq Ident.compare

let callees program proc =
  let acc = ref Ident.Set.empty in
  Cfg.iter_instrs proc (fun _ instr ->
      match instr with
      | Instr.Icall (_, target, _) ->
        List.iter
          (fun p -> acc := Ident.Set.add p !acc)
          (callees_of_target program target)
      | _ -> ());
  !acc

let transitive_closure program =
  let direct = Hashtbl.create 32 in
  List.iter
    (fun proc ->
      Hashtbl.replace direct proc.Cfg.pr_name (callees program proc))
    program.Cfg.prog_procs;
  let closure = Hashtbl.create 32 in
  List.iter
    (fun proc -> Hashtbl.replace closure proc.Cfg.pr_name
        (Option.value (Hashtbl.find_opt direct proc.Cfg.pr_name)
           ~default:Ident.Set.empty))
    program.Cfg.prog_procs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun proc ->
        let name = proc.Cfg.pr_name in
        let cur = Hashtbl.find closure name in
        let expanded =
          Ident.Set.fold
            (fun callee acc ->
              match Hashtbl.find_opt closure callee with
              | Some s -> Ident.Set.union acc s
              | None -> acc)
            cur cur
        in
        if not (Ident.Set.equal expanded cur) then begin
          Hashtbl.replace closure name expanded;
          changed := true
        end)
      program.Cfg.prog_procs
  done;
  closure

let is_recursive program name =
  let closure = transitive_closure program in
  match Hashtbl.find_opt closure name with
  | Some s -> Ident.Set.mem name s
  | None -> false
