(** Call graph over the IR, with virtual calls resolved conservatively to
    every method implementation a compatible receiver type could dispatch
    to. Used by the interprocedural mod-ref analysis and by the inliner's
    recursion check. *)

open Support

val callees : Cfg.program -> Cfg.proc -> Ident.Set.t
(** Direct callees plus all possible targets of virtual calls. *)

val callees_of_target :
  Cfg.program -> Instr.target -> Ident.t list
(** Possible procedures a call target dispatches to. For [Cvirtual (m, t)]
    this is the set of [method_impl] results over [Subtypes (t)]. *)

val transitive_closure : Cfg.program -> (Ident.t, Ident.Set.t) Hashtbl.t
(** For each procedure, every procedure reachable from it (including
    itself if recursive). *)

val is_recursive : Cfg.program -> Ident.t -> bool
