(* IR instructions.

   Memory traffic is explicit: the only instructions that touch the heap (or
   memory-resident stack aggregates) are [Iload], [Istore] and the implicit
   dope-vector reads inside open-array subscripts and [Bnumber]. Everything
   else operates on registers. This is the representation over which RLE and
   the alias oracles work. *)

open Support
open Minim3

type rvalue =
  | Ratom of Reg.atom
  | Rbinop of Ast.binop * Reg.atom * Reg.atom
  | Runop of Ast.unop * Reg.atom

type target =
  | Cdirect of Ident.t  (* procedure name *)
  | Cvirtual of Ident.t * Types.tid  (* method name, static receiver type *)

type t =
  | Iassign of Reg.var * rvalue  (* register move/ALU *)
  | Iload of Reg.var * Apath.t  (* v := mem[AP] *)
  | Istore of Apath.t * Reg.atom  (* mem[AP] := atom *)
  | Iaddr of Reg.var * Apath.t  (* v := address of AP (VAR actual / WITH) *)
  | Inew of Reg.var * Types.tid * Reg.atom option  (* allocation; open-array length *)
  | Icall of Reg.var option * target * Reg.atom list
  | Ibuiltin of Reg.var option * Tast.builtin * Reg.atom list

type terminator =
  | Tjump of int  (* block id *)
  | Tbranch of Reg.atom * int * int  (* then-block, else-block *)
  | Treturn of Reg.atom option

let defined_var = function
  | Iassign (v, _) | Iload (v, _) | Iaddr (v, _) | Inew (v, _, _) -> Some v
  | Icall (v, _, _) | Ibuiltin (v, _, _) -> v
  | Istore _ -> None

let atoms_used = function
  | Iassign (_, Ratom a) -> [ a ]
  | Iassign (_, Rbinop (_, a, b)) -> [ a; b ]
  | Iassign (_, Runop (_, a)) -> [ a ]
  | Iload (_, ap) | Iaddr (_, ap) ->
    List.map (fun v -> Reg.Avar v) (Apath.vars_used ap)
  | Istore (ap, a) -> a :: List.map (fun v -> Reg.Avar v) (Apath.vars_used ap)
  | Inew (_, _, len) -> Option.to_list len
  | Icall (_, _, args) -> args
  | Ibuiltin (_, _, args) -> args

let vars_used i =
  List.filter_map (function Reg.Avar v -> Some v | _ -> None) (atoms_used i)

let pp_target ppf = function
  | Cdirect p -> Ident.pp ppf p
  | Cvirtual (m, _) -> Format.fprintf ppf "virtual:%a" Ident.pp m

let pp ppf = function
  | Iassign (v, Ratom a) ->
    Format.fprintf ppf "%a := %a" Reg.pp_var v Reg.pp_atom a
  | Iassign (v, Rbinop (op, a, b)) ->
    Format.fprintf ppf "%a := %a %s %a" Reg.pp_var v Reg.pp_atom a
      (Ast.binop_to_string op) Reg.pp_atom b
  | Iassign (v, Runop (op, a)) ->
    Format.fprintf ppf "%a := %s %a" Reg.pp_var v (Ast.unop_to_string op)
      Reg.pp_atom a
  | Iload (v, ap) -> Format.fprintf ppf "%a := load %a" Reg.pp_var v Apath.pp ap
  | Istore (ap, a) -> Format.fprintf ppf "store %a := %a" Apath.pp ap Reg.pp_atom a
  | Iaddr (v, ap) -> Format.fprintf ppf "%a := addr %a" Reg.pp_var v Apath.pp ap
  | Inew (v, _, None) -> Format.fprintf ppf "%a := new" Reg.pp_var v
  | Inew (v, _, Some len) ->
    Format.fprintf ppf "%a := new[%a]" Reg.pp_var v Reg.pp_atom len
  | Icall (dst, tgt, args) ->
    let pp_dst ppf = function
      | Some v -> Format.fprintf ppf "%a := " Reg.pp_var v
      | None -> ()
    in
    Format.fprintf ppf "%acall %a(%a)" pp_dst dst pp_target tgt
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Reg.pp_atom)
      args
  | Ibuiltin (dst, _, args) ->
    let pp_dst ppf = function
      | Some v -> Format.fprintf ppf "%a := " Reg.pp_var v
      | None -> ()
    in
    Format.fprintf ppf "%abuiltin(%a)" pp_dst dst
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Reg.pp_atom)
      args

let pp_terminator ppf = function
  | Tjump l -> Format.fprintf ppf "jump B%d" l
  | Tbranch (a, t, f) ->
    Format.fprintf ppf "branch %a ? B%d : B%d" Reg.pp_atom a t f
  | Treturn None -> Format.pp_print_string ppf "return"
  | Treturn (Some a) -> Format.fprintf ppf "return %a" Reg.pp_atom a
