(** Dominator computation (iterative bit-vector algorithm over reverse
    postorder). Only blocks reachable from the entry participate;
    unreachable blocks dominate nothing and are dominated by nothing. *)

type t

val compute : Cfg.proc -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]? Reflexive on
    reachable blocks. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val reachable : t -> int -> bool
