lib/ir/dataflow.ml: Array Bitset Cfg List Support
