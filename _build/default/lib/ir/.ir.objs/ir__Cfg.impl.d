lib/ir/cfg.ml: Array Format Ident Instr List Minim3 Reg Support Types Vec
