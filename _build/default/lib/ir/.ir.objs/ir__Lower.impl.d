lib/ir/lower.ml: Apath Ast Cfg Diag Ident Instr List Minim3 Option Reg Support Tast Typecheck Types Vec
