lib/ir/apath.mli: Format Hashtbl Ident Minim3 Reg Support Types
