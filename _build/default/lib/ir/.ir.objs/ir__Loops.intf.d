lib/ir/loops.mli: Cfg Dom Support
