lib/ir/apath.ml: Format Hashtbl Ident List Minim3 Reg Support Types
