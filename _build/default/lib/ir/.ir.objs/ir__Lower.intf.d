lib/ir/lower.mli: Cfg Minim3
