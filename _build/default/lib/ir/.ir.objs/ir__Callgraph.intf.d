lib/ir/callgraph.mli: Cfg Hashtbl Ident Instr Support
