lib/ir/cfg.mli: Format Ident Instr Minim3 Reg Support Types Vec
