lib/ir/loops.ml: Array Bitset Cfg Dom Hashtbl Instr Int List Option Support Vec
