lib/ir/reg.ml: Ast Format Hashtbl Ident Int Minim3 Support Types
