lib/ir/instr.ml: Apath Ast Format Ident List Minim3 Option Reg Support Tast Types
