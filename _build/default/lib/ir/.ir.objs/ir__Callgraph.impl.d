lib/ir/callgraph.ml: Cfg Hashtbl Ident Instr List Minim3 Option Support Types
