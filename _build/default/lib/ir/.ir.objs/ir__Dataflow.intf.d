lib/ir/dataflow.mli: Bitset Cfg Support
