lib/ir/dom.ml: Array Bitset Cfg List Support
