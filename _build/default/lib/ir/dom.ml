open Support

type t = {
  doms : Bitset.t option array;  (* per block: set of dominators; None = unreachable *)
  idoms : int option array;
}

let compute proc =
  let n = Cfg.n_blocks proc in
  let rpo = Cfg.reverse_postorder proc in
  let preds = Cfg.predecessors proc in
  let doms : Bitset.t option array = Array.make n None in
  let entry = proc.Cfg.pr_entry in
  let full () =
    let s = Bitset.create n in
    Bitset.fill s;
    s
  in
  List.iter (fun b -> doms.(b) <- Some (full ())) rpo;
  let entry_set = Bitset.create n in
  Bitset.add entry_set entry;
  doms.(entry) <- Some entry_set;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let inter = full () in
          let has_pred = ref false in
          List.iter
            (fun p ->
              match doms.(p) with
              | Some dp ->
                has_pred := true;
                Bitset.inter_into ~dst:inter dp
              | None -> ())
            preds.(b);
          if !has_pred then begin
            Bitset.add inter b;
            match doms.(b) with
            | Some old when Bitset.equal old inter -> ()
            | _ ->
              doms.(b) <- Some inter;
              changed := true
          end
        end)
      rpo
  done;
  (* Immediate dominators: the unique strict dominator dominated by all other
     strict dominators. *)
  let idoms = Array.make n None in
  List.iter
    (fun b ->
      if b <> entry then
        match doms.(b) with
        | None -> ()
        | Some db ->
          let strict = List.filter (fun d -> d <> b) (Bitset.elements db) in
          let is_idom c =
            List.for_all
              (fun d ->
                d = c
                ||
                match doms.(c) with Some dc -> Bitset.mem dc d | None -> false)
              strict
          in
          idoms.(b) <- List.find_opt is_idom strict)
    rpo;
  { doms; idoms }

let dominates t a b =
  match t.doms.(b) with Some db -> Bitset.mem db a | None -> false

let idom t b = t.idoms.(b)
let reachable t b = t.doms.(b) <> None
