(** Lowering from the typed AST to the mid-level IR.

    Design points that matter to the paper's experiments:

    - Access paths are preserved whole: a source expression [a.b^.c\[i\]]
      lowers to a single [Iload] carrying the full selector string (after
      flattening index subexpressions), exactly the unit the paper's RLE
      hoists and CSEs. When the source names an intermediate pointer in a
      variable, the path is split accordingly — which is what produces the
      "Breakup" category of missed redundancies, since RLE does no copy
      propagation.
    - By-reference formals and WITH aliases hold addresses; their uses go
      through an explicit [Sderef], and the corresponding [Iaddr]
      instructions are the ground truth for AddressTaken.
    - Short-circuit AND/OR lower to control flow.
    - Global initializers run at the head of the synthesized main. *)

val lower_program : Minim3.Tast.program -> Cfg.program

val lower_string : ?file:string -> string -> Cfg.program
(** Parse, check, lower. *)
