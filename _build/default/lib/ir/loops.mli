(** Natural loop discovery and preheader insertion.

    A back edge is an edge [t -> h] where [h] dominates [t]; its natural
    loop is [h] plus every block that reaches [t] without passing through
    [h]. Loops sharing a header are merged. RLE's loop-invariant load
    motion hoists into a dedicated preheader created on demand. *)

type loop = {
  header : int;
  body : Support.Bitset.t;  (* blocks in the loop, including the header *)
  latches : int list;  (* back-edge sources *)
}

val find : Cfg.proc -> Dom.t -> loop list
(** Innermost-first (by increasing body size). *)

val ensure_preheader : Cfg.proc -> loop -> int
(** Returns the id of a block that is the unique out-of-loop predecessor of
    the loop header, creating one (and retargeting edges) if needed. The
    CFG is mutated; dominator info computed before this call is stale
    afterwards. *)

val executes_every_iteration : Cfg.proc -> Dom.t -> loop -> int -> bool
(** Does block [b] execute on every iteration of the loop, i.e. does it
    dominate every latch? (The paper hoists only such references.) *)
