open Support

type loop = { header : int; body : Bitset.t; latches : int list }

let find proc dom =
  let n = Cfg.n_blocks proc in
  let preds = Cfg.predecessors proc in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  Vec.iter
    (fun b ->
      List.iter
        (fun s ->
          if Dom.reachable dom b.Cfg.b_id && Dom.dominates dom s b.Cfg.b_id then
            Hashtbl.replace by_header s
              (b.Cfg.b_id :: Option.value (Hashtbl.find_opt by_header s) ~default:[]))
        (Cfg.successors b.Cfg.b_term))
    proc.Cfg.pr_blocks;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = Bitset.create n in
        Bitset.add body header;
        let rec walk b =
          if not (Bitset.mem body b) then begin
            Bitset.add body b;
            List.iter walk preds.(b)
          end
        in
        List.iter walk latches;
        { header; body; latches } :: acc)
      by_header []
  in
  List.sort (fun a b -> Int.compare (Bitset.cardinal a.body) (Bitset.cardinal b.body)) loops

let ensure_preheader proc loop =
  let preds = Cfg.predecessors proc in
  let outside =
    List.filter (fun p -> not (Bitset.mem loop.body p)) preds.(loop.header)
  in
  match outside with
  | [ p ] when
      (* A unique outside predecessor whose only successor is the header can
         serve as the preheader directly. *)
      Cfg.successors (Cfg.block proc p).Cfg.b_term = [ loop.header ] ->
    p
  | _ ->
    let pre = Cfg.new_block proc (Instr.Tjump loop.header) in
    let retarget t =
      match t with
      | Instr.Tjump l when l = loop.header -> Instr.Tjump pre.Cfg.b_id
      | Instr.Tbranch (a, x, y) ->
        let x = if x = loop.header then pre.Cfg.b_id else x in
        let y = if y = loop.header then pre.Cfg.b_id else y in
        Instr.Tbranch (a, x, y)
      | t -> t
    in
    List.iter
      (fun p ->
        let b = Cfg.block proc p in
        b.Cfg.b_term <- retarget b.Cfg.b_term)
      outside;
    (* Entry adjustment if the loop header was the procedure entry. *)
    if proc.Cfg.pr_entry = loop.header then proc.Cfg.pr_entry <- pre.Cfg.b_id;
    pre.Cfg.b_id

let executes_every_iteration _proc dom loop b =
  Bitset.mem loop.body b
  && List.for_all (fun latch -> Dom.dominates dom b latch) loop.latches
