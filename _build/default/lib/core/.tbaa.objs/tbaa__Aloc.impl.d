lib/core/aloc.ml: Format Ident Int Minim3 Set Support Types
