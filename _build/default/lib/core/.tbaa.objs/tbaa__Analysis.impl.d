lib/core/analysis.ml: Facts Field_type_decl Minim3 Oracle Sm_type_refs Type_decl Types World
