lib/core/field_type_decl.mli: Address_taken Apath Facts Ir Minim3 Oracle Types World
