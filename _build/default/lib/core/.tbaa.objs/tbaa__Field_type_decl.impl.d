lib/core/field_type_decl.ml: Address_taken Apath Facts Ident Ir Kills Option Oracle Reg Support Type_decl
