lib/core/alias_pairs.ml: Array Facts Ident Oracle Support
