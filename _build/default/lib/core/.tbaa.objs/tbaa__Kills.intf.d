lib/core/kills.mli: Address_taken Aloc Apath Ir Minim3 Types
