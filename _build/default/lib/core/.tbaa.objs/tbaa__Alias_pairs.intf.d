lib/core/alias_pairs.mli: Facts Oracle
