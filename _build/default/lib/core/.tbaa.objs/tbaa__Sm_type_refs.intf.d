lib/core/sm_type_refs.mli: Facts Minim3 Oracle Types World
