lib/core/analysis.mli: Facts Ir Minim3 Oracle Types World
