lib/core/oracle.ml: Aloc Apath Ir List Minim3 Reg Types
