lib/core/facts.ml: Apath Ast Callgraph Cfg Ident Instr Ir List Minim3 Reg Support Types Vec
