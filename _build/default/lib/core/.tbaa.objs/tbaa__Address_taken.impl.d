lib/core/address_taken.ml: Facts Ident Ir List Minim3 Support Types World
