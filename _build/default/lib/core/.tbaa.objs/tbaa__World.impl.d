lib/core/world.ml:
