lib/core/kills.ml: Address_taken Aloc Apath Ident Ir Reg Support
