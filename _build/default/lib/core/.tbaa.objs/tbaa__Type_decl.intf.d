lib/core/type_decl.mli: Facts Ir Minim3 Oracle Types World
