lib/core/sm_type_refs.ml: Address_taken Array Bitset Facts Field_type_decl Kills List Minim3 Oracle Support Type_decl Types Union_find World
