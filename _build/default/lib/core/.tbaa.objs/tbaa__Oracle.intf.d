lib/core/oracle.mli: Aloc Apath Ir Minim3 Reg Types
