lib/core/aloc.mli: Format Ident Minim3 Set Support Types
