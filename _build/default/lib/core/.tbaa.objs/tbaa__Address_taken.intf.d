lib/core/address_taken.mli: Facts Ident Ir Minim3 Support Types World
