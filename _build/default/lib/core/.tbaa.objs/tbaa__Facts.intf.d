lib/core/facts.mli: Ident Ir Minim3 Support Types
