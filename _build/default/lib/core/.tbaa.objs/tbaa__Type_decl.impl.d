lib/core/type_decl.ml: Address_taken Apath Facts Ir Kills Minim3 Oracle Reg Types
