(* Closed- vs open-world analysis (paper §4).

   Closed world: the whole program is available. Open world: unavailable
   type-safe code may exist; AddressTaken additionally holds for anything
   whose type matches a by-reference formal, and unbranded subtype-related
   types are conservatively merged because unavailable code could
   reconstruct them (Modula-3 structural equivalence) and assign between
   them. BRANDED types observe name equivalence and cannot be reconstructed
   outside the program, so they are exempt. *)

type t = Closed | Open

let to_string = function Closed -> "closed" | Open -> "open"
