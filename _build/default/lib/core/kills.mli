(** Shared store-abstraction and kill logic (the glue between an alias
    analysis and its mod-ref / availability clients).

    [class_kills] mirrors FieldTypeDecl's case analysis with the store side
    abstracted to a location class: a field store can only change a field
    of the same name on a compatible receiver (case 2 collapsed to its type
    test), a dereference store can change a field/element only if that
    field/element's address was taken (cases 3–4), field and element
    locations never collide (case 5), and so on. *)

open Minim3
open Ir

val prefix_ty : Apath.t -> Types.tid
(** Static type of the path minus its last selector. *)

val store_class : Apath.t -> Aloc.t

val class_kills :
  compat:(Types.tid -> Types.tid -> bool) ->
  at:Address_taken.ctx ->
  Aloc.t ->
  Apath.t ->
  bool
