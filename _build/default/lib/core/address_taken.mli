(** The paper's AddressTaken predicate.

    In Modula-3 (and MiniM3) addresses arise in exactly two ways: VAR
    (by-reference) actuals and WITH bindings over designators. The facts
    pass records every such occurrence; this module answers the queries
    FieldTypeDecl's cases 3–4 make, relative to a type-compatibility core
    (so the same machinery serves TypeDecl-based and TypeRefs-based
    oracles).

    Under the open-world assumption (§4) AddressTaken additionally holds
    whenever the queried thing's type is the *identical* type of some
    by-reference formal — unavailable callers may pass anything of that
    type by reference. (Identity rather than compatibility because Modula-3
    requires VAR actuals to match formals exactly.) *)

open Support
open Minim3

type ctx

val make :
  facts:Facts.t ->
  world:World.t ->
  compat:(Types.tid -> Types.tid -> bool) ->
  ctx

val field_taken : ctx -> Ident.t -> recv:Types.tid -> content:Types.tid -> bool
(** Was the address of field [f] of any object compatible with [recv]
    taken? *)

val elem_taken : ctx -> array_ty:Types.tid -> elem:Types.tid -> bool
(** Was the address of an element of any array compatible with [array_ty]
    taken? *)

val var_taken : ctx -> Ir.Reg.var -> bool
