(** Program facts the alias analyses consume, collected in one linear pass
    over the IR (the paper's complexity argument, §2.5, rests on this pass
    being linear in the number of instructions).

    - every implicit or explicit pointer assignment, as a (destination type,
      source type) pair — explicit [a := b], allocation, argument binding,
      and return-value binding;
    - every address-taking occurrence (the [Iaddr] instructions lowered from
      VAR actuals and WITH-over-designator), split by what was taken:
      an object/record field, an array element, or a whole variable;
    - the types of by-reference formals (the open-world AddressTaken rule);
    - every heap memory reference (the [Apath.t] of each load and store),
      for the static alias-pair metric. *)

open Support
open Minim3

type field_addr = {
  fa_field : Ident.t;
  fa_recv : Types.tid;  (* type of the object/record the field was taken from *)
  fa_content : Types.tid;  (* the field's own type *)
}

type elem_addr = {
  ea_array : Types.tid;  (* array type subscripted *)
  ea_elem : Types.tid;
}

type memref = {
  mr_proc : Ident.t;
  mr_path : Ir.Apath.t;
  mr_is_store : bool;
}

type t = {
  tenv : Types.env;
  assignments : (Types.tid * Types.tid) list;  (* (dst, src), dst <> src *)
  field_addrs : field_addr list;
  elem_addrs : elem_addr list;
  var_addrs : Ir.Reg.var list;  (* whole variables whose address is taken *)
  byref_formal_tids : Types.tid list;  (* distinct referent types of VAR formals *)
  memrefs : memref list;  (* heap references, in program order *)
}

val collect : Ir.Cfg.program -> t
