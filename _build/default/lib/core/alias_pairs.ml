open Support

type counts = { references : int; local_pairs : int; global_pairs : int }

let count (oracle : Oracle.t) (facts : Facts.t) =
  let refs = Array.of_list facts.Facts.memrefs in
  let n = Array.length refs in
  let local = ref 0 and global = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = refs.(i) and b = refs.(j) in
      if oracle.Oracle.may_alias a.Facts.mr_path b.Facts.mr_path then begin
        incr global;
        if Ident.equal a.Facts.mr_proc b.Facts.mr_proc then incr local
      end
    done
  done;
  { references = n; local_pairs = !local; global_pairs = !global }

let average_local c =
  if c.references = 0 then 0.0
  else 2.0 *. float_of_int c.local_pairs /. float_of_int c.references

let average_global c =
  if c.references = 0 then 0.0
  else 2.0 *. float_of_int c.global_pairs /. float_of_int c.references
