open Support
open Ir

let prefix_ty ap =
  match Apath.prefix ap with
  | Some p -> Apath.ty p
  | None -> ap.Apath.base.Reg.v_ty

let store_class ap =
  match Apath.last ap with
  | Some (Apath.Sfield (f, content)) -> Aloc.Lfield (f, prefix_ty ap, content)
  | Some (Apath.Sindex (_, elem)) -> Aloc.Lelem (prefix_ty ap, elem)
  | Some (Apath.Sderef t) -> Aloc.Ltarget t
  | None -> Aloc.Lvar (ap.Apath.base.Reg.v_id, ap.Apath.base.Reg.v_ty)

let class_kills ~compat ~at cls ap =
  match (cls, Apath.last ap) with
  | _, None ->
    (* A bare variable's slot: only a store classed as that same variable
       (or a dereference, when the variable's address escaped) touches it.
       Clients handle register kills separately; keep derefs conservative. *)
    (match cls with
    | Aloc.Lvar (id, _) -> id = ap.Apath.base.Reg.v_id
    | Aloc.Ltarget t ->
      Address_taken.var_taken at ap.Apath.base
      && compat t ap.Apath.base.Reg.v_ty
    | Aloc.Lfield _ | Aloc.Lelem _ -> false)
  | Aloc.Lfield (f, recv, _), Some (Apath.Sfield (g, _)) ->
    Ident.equal f g && compat recv (prefix_ty ap)
  | Aloc.Lfield (f, recv, content), Some (Apath.Sderef t) ->
    Address_taken.field_taken at f ~recv ~content && compat content t
  | Aloc.Lfield _, Some (Apath.Sindex _) -> false
  | Aloc.Lelem (arr, _), Some (Apath.Sindex _) -> compat arr (prefix_ty ap)
  | Aloc.Lelem (arr, elem), Some (Apath.Sderef t) ->
    Address_taken.elem_taken at ~array_ty:arr ~elem && compat elem t
  | Aloc.Lelem _, Some (Apath.Sfield _) -> false
  | Aloc.Ltarget t, Some (Apath.Sderef u) -> compat t u
  | Aloc.Ltarget t, Some (Apath.Sfield (g, c)) ->
    Address_taken.field_taken at g ~recv:(prefix_ty ap) ~content:c && compat t c
  | Aloc.Ltarget t, Some (Apath.Sindex (_, e)) ->
    Address_taken.elem_taken at ~array_ty:(prefix_ty ap) ~elem:e && compat t e
  | Aloc.Lvar (_, vty), Some (Apath.Sderef t) ->
    (* A write to a variable's own slot is visible through a dereference
       only when the types agree; the class is only generated for variables
       whose address escaped, so no further AddressTaken check is needed. *)
    compat vty t
  | Aloc.Lvar _, Some (Apath.Sfield _ | Apath.Sindex _) -> false
