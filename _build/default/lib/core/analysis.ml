open Minim3

type t = {
  facts : Facts.t;
  world : World.t;
  type_decl : Oracle.t;
  field_type_decl : Oracle.t;
  sm_field_type_refs : Oracle.t;
  type_refs_table : Types.tid -> Types.tid list;
}

let analyze ?(world = World.Closed) program =
  let facts = Facts.collect program in
  let sm = Sm_type_refs.build ~facts ~world () in
  { facts;
    world;
    type_decl = Type_decl.oracle ~facts ~world;
    field_type_decl = Field_type_decl.oracle ~facts ~world;
    sm_field_type_refs = Sm_type_refs.oracle ~facts ~world ();
    type_refs_table = Sm_type_refs.type_refs sm }

let oracles t = [ t.type_decl; t.field_type_decl; t.sm_field_type_refs ]
