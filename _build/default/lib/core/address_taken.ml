open Support
open Minim3

type ctx = {
  facts : Facts.t;
  world : World.t;
  compat : Types.tid -> Types.tid -> bool;
}

let make ~facts ~world ~compat = { facts; world; compat }

let open_world_hit ctx tid =
  match ctx.world with
  | World.Closed -> false
  | World.Open -> List.mem tid ctx.facts.Facts.byref_formal_tids

let field_taken ctx f ~recv ~content =
  List.exists
    (fun (fa : Facts.field_addr) ->
      Ident.equal fa.Facts.fa_field f && ctx.compat fa.Facts.fa_recv recv)
    ctx.facts.Facts.field_addrs
  || open_world_hit ctx content

let elem_taken ctx ~array_ty ~elem =
  List.exists
    (fun (ea : Facts.elem_addr) -> ctx.compat ea.Facts.ea_array array_ty)
    ctx.facts.Facts.elem_addrs
  || open_world_hit ctx elem

let var_taken ctx v =
  List.exists (fun u -> Ir.Reg.var_equal u v) ctx.facts.Facts.var_addrs
  || open_world_hit ctx v.Ir.Reg.v_ty
