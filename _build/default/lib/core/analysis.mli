(** Top-level entry point: collect program facts once and build the
    paper's three alias oracles over them. *)

open Minim3

type t = {
  facts : Facts.t;
  world : World.t;
  type_decl : Oracle.t;
  field_type_decl : Oracle.t;
  sm_field_type_refs : Oracle.t;
  type_refs_table : Types.tid -> Types.tid list;
      (** The SMTypeRefs TypeRefsTable, also used by method resolution. *)
}

val analyze : ?world:World.t -> Ir.Cfg.program -> t

val oracles : t -> Oracle.t list
(** The three oracles in increasing precision order:
    TypeDecl, FieldTypeDecl, SMFieldTypeRefs. *)
