(** The static alias-pair metric of the paper's Table 5.

    References are heap memory reference *occurrences* (each load or store
    site counts once). Local pairs are unordered pairs of distinct
    occurrences in the same procedure that may alias; global pairs drop the
    same-procedure restriction. A reference trivially aliases itself, so
    the (i, i) pair is excluded, but two distinct occurrences of the same
    path do count. *)

type counts = {
  references : int;
  local_pairs : int;
  global_pairs : int;
}

val count : Oracle.t -> Facts.t -> counts

val average_local : counts -> float
(** Local alias pairs per reference (the paper reports 0.3 – 20.8). *)

val average_global : counts -> float
