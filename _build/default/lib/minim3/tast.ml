(* Typed abstract syntax.

   Produced by Typecheck from the raw AST: every expression carries its tid,
   names are resolved to variable references, [p.f] on a REF RECORD is
   desugared into an explicit dereference followed by a field access (so the
   access-path shape seen by the alias analyses matches the paper's
   Qualify / Dereference / Subscript taxonomy), and WITH bindings are
   classified as aliases (designator operand — an address-taking construct)
   or plain value bindings. *)

open Support

type var_kind = Kglobal | Kparam of Ast.param_mode | Klocal

type var_ref = { vr_name : Ident.t; vr_kind : var_kind; vr_ty : Types.tid }

type builtin =
  | Bprint_int
  | Bprint_char
  | Bprint_bool
  | Bprint_text of string
  | Bprint_ln
  | Bord  (* CHAR -> INTEGER *)
  | Bchr  (* INTEGER -> CHAR *)
  | Babs
  | Bmin
  | Bmax
  | Bnumber  (* NUMBER(open array designator): its length, via the dope vector *)
  | Bhalt

type expr = { ty : Types.tid; desc : expr_desc; loc : Loc.t }

and expr_desc =
  | Eint of int
  | Ebool of bool
  | Echar of char
  | Enil
  | Evar of var_ref
  | Efield of expr * Ident.t  (* object qualify, or record field of a designator *)
  | Ederef of expr
  | Eindex of expr * expr
  | Ebinop of Ast.binop * expr * expr
  | Eunop of Ast.unop * expr
  | Ecall_proc of Ident.t * arg list
  | Ecall_method of expr * Ident.t * arg list  (* dynamic dispatch on receiver *)
  | Ebuiltin of builtin * expr list
  | Enew of Types.tid * expr option  (* allocated type; open-array length *)

and arg =
  | Aby_value of expr
  | Aby_ref of expr  (* designator whose address is passed (VAR actual) *)

type with_bind = {
  wb_var : var_ref;
  wb_alias : bool;  (* true: binds an alias to a designator (takes an address) *)
  wb_expr : expr;
}

type stmt = { s_desc : stmt_desc; s_loc : Loc.t }

and stmt_desc =
  | Sassign of expr * expr  (* designator := value; scalar-typed only *)
  | Scall of expr  (* Ecall_proc / Ecall_method / Ebuiltin for effect *)
  | Sif of (expr * stmt list) list * stmt list
  | Swhile of expr * stmt list
  | Srepeat of stmt list * expr
  | Sloop of stmt list
  | Sfor of var_ref * expr * expr * int * stmt list
  | Sexit
  | Sreturn of expr option
  | Swith of with_bind list * stmt list

type proc = {
  p_name : Ident.t;
  p_params : (Ident.t * Ast.param_mode * Types.tid) list;
  p_ret : Types.tid option;
  p_locals : (Ident.t * Types.tid * expr option) list;
  p_body : stmt list;
  p_loc : Loc.t;
}

type program = {
  module_name : Ident.t;
  tenv : Types.env;
  type_names : (Ident.t * Types.tid) list;  (* declared type names, in order *)
  globals : (Ident.t * Types.tid * expr option) list;
  procs : proc list;  (* includes the synthesized main, named "@main" *)
  main_name : Ident.t;
}

let main_ident = Ident.intern "@main"

let find_proc program name =
  List.find_opt (fun p -> Ident.equal p.p_name name) program.procs

(* Designator test on typed expressions (locations one can assign to or take
   the address of). *)
let rec is_designator e =
  match e.desc with
  | Evar _ -> true
  | Efield (base, _) | Eindex (base, _) -> is_designator base
  | Ederef base -> is_designator base
  | _ -> false
