(* Lexical tokens of MiniM3, a type-safe Modula-3 subset.

   The subset keeps every construct the paper's analyses consult: object
   types with inheritance and methods, records, fixed and open arrays, REF
   (optionally BRANDED) types, VAR parameters and WITH (the two
   address-taking constructs), and pointer assignment. *)

type t =
  (* literals and names *)
  | IDENT of string
  | INT of int
  | CHARLIT of char
  | STRING of string
  (* keywords *)
  | MODULE | TYPE | CONST | VAR | PROCEDURE | BEGIN | END
  | IF | THEN | ELSE | ELSIF | WHILE | DO | FOR | TO | BY
  | REPEAT | UNTIL | LOOP | EXIT | RETURN | WITH
  | OBJECT | METHODS | OVERRIDES | RECORD | ARRAY | OF | REF | BRANDED
  | NEW | NIL | TRUE | FALSE | ROOT
  | DIV | MOD | AND | OR | NOT
  (* punctuation and operators *)
  | SEMI | COMMA | COLON | ASSIGN | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | LPAREN | RPAREN | LBRACKET | RBRACKET
  | CARET | DOT | DOTDOT
  | EOF

let keyword_table : (string * t) list =
  [ ("MODULE", MODULE); ("TYPE", TYPE); ("CONST", CONST); ("VAR", VAR);
    ("PROCEDURE", PROCEDURE); ("BEGIN", BEGIN); ("END", END); ("IF", IF);
    ("THEN", THEN); ("ELSE", ELSE); ("ELSIF", ELSIF); ("WHILE", WHILE);
    ("DO", DO); ("FOR", FOR); ("TO", TO); ("BY", BY); ("REPEAT", REPEAT);
    ("UNTIL", UNTIL); ("LOOP", LOOP); ("EXIT", EXIT); ("RETURN", RETURN);
    ("WITH", WITH); ("OBJECT", OBJECT); ("METHODS", METHODS);
    ("OVERRIDES", OVERRIDES); ("RECORD", RECORD); ("ARRAY", ARRAY);
    ("OF", OF); ("REF", REF); ("BRANDED", BRANDED); ("NEW", NEW);
    ("NIL", NIL); ("TRUE", TRUE); ("FALSE", FALSE); ("ROOT", ROOT);
    ("DIV", DIV); ("MOD", MOD); ("AND", AND); ("OR", OR); ("NOT", NOT) ]

let to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | CHARLIT c -> Printf.sprintf "'%c'" c
  | STRING s -> Printf.sprintf "%S" s
  | MODULE -> "MODULE" | TYPE -> "TYPE" | CONST -> "CONST" | VAR -> "VAR"
  | PROCEDURE -> "PROCEDURE" | BEGIN -> "BEGIN" | END -> "END"
  | IF -> "IF" | THEN -> "THEN" | ELSE -> "ELSE" | ELSIF -> "ELSIF"
  | WHILE -> "WHILE" | DO -> "DO" | FOR -> "FOR" | TO -> "TO" | BY -> "BY"
  | REPEAT -> "REPEAT" | UNTIL -> "UNTIL" | LOOP -> "LOOP" | EXIT -> "EXIT"
  | RETURN -> "RETURN" | WITH -> "WITH" | OBJECT -> "OBJECT"
  | METHODS -> "METHODS" | OVERRIDES -> "OVERRIDES" | RECORD -> "RECORD"
  | ARRAY -> "ARRAY" | OF -> "OF" | REF -> "REF" | BRANDED -> "BRANDED"
  | NEW -> "NEW" | NIL -> "NIL" | TRUE -> "TRUE" | FALSE -> "FALSE"
  | ROOT -> "ROOT" | DIV -> "DIV" | MOD -> "MOD" | AND -> "AND" | OR -> "OR"
  | NOT -> "NOT" | SEMI -> ";" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> ":=" | EQ -> "=" | NE -> "#" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACKET -> "[" | RBRACKET -> "]"
  | CARET -> "^" | DOT -> "." | DOTDOT -> ".." | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
