(** Hand-written lexer for MiniM3.

    Comments are Modula-3 style [(* ... *)] and nest. Character literals use
    single quotes with [\n], [\t], [\\], [\'] escapes; string literals (used
    only as arguments to the Print builtin) use double quotes with the same
    escapes. *)

type t

val create : file:string -> string -> t
(** [create ~file source] positions the lexer at the start of [source];
    [file] is used in diagnostics only. *)

val next : t -> Token.t * Support.Loc.t
(** The next token and the location where it starts. Returns [EOF]
    indefinitely at end of input. Raises {!Support.Diag.Compile_error} on
    malformed input. *)

val tokenize : file:string -> string -> (Token.t * Support.Loc.t) list
(** The whole token stream including the final [EOF]. *)
