(** Recursive-descent parser for MiniM3.

    The grammar is LL(2) — one token of lookahead everywhere except
    distinguishing a supertype name from a plain type name in
    [T = Super OBJECT ... END]. *)

val parse_module : file:string -> string -> Ast.module_
(** Parse a full compilation unit. Raises {!Support.Diag.Compile_error} on
    syntax errors, with the offending location. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
