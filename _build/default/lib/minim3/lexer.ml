open Support

type t = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the start of the current line *)
}

let create ~file src = { file; src; pos = 0; line = 1; bol = 0 }

let loc t = Loc.make ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)

let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let peek2 t =
  if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.bol <- t.pos + 1
  | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_comment t depth start_loc =
  match (peek t, peek2 t) with
  | None, _ -> Diag.errorf_at start_loc "unterminated comment"
  | Some '*', Some ')' ->
    advance t;
    advance t;
    if depth > 1 then skip_comment t (depth - 1) start_loc
  | Some '(', Some '*' ->
    advance t;
    advance t;
    skip_comment t (depth + 1) start_loc
  | Some _, _ ->
    advance t;
    skip_comment t depth start_loc

let rec skip_ws t =
  match (peek t, peek2 t) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance t;
    skip_ws t
  | Some '(', Some '*' ->
    let start = loc t in
    advance t;
    advance t;
    skip_comment t 1 start;
    skip_ws t
  | _ -> ()

let lex_escape t start_loc =
  match peek t with
  | Some 'n' -> advance t; '\n'
  | Some 't' -> advance t; '\t'
  | Some '\\' -> advance t; '\\'
  | Some '\'' -> advance t; '\''
  | Some '"' -> advance t; '"'
  | Some c -> Diag.errorf_at start_loc "unknown escape '\\%c'" c
  | None -> Diag.errorf_at start_loc "unterminated escape"

let lex_char t start_loc =
  advance t;
  (* past the opening quote *)
  let c =
    match peek t with
    | Some '\\' ->
      advance t;
      lex_escape t start_loc
    | Some c when c <> '\'' ->
      advance t;
      c
    | _ -> Diag.errorf_at start_loc "malformed character literal"
  in
  match peek t with
  | Some '\'' ->
    advance t;
    Token.CHARLIT c
  | _ -> Diag.errorf_at start_loc "character literal missing closing quote"

let lex_string t start_loc =
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t with
    | None | Some '\n' -> Diag.errorf_at start_loc "unterminated string literal"
    | Some '"' ->
      advance t;
      Token.STRING (Buffer.contents buf)
    | Some '\\' ->
      advance t;
      Buffer.add_char buf (lex_escape t start_loc);
      go ()
    | Some c ->
      advance t;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let lex_number t =
  let start = t.pos in
  while (match peek t with Some c -> is_digit c | None -> false) do
    advance t
  done;
  let text = String.sub t.src start (t.pos - start) in
  match int_of_string_opt text with
  | Some n -> Token.INT n
  | None -> Diag.errorf_at (loc t) "integer literal out of range: %s" text

let lex_word t =
  let start = t.pos in
  while (match peek t with Some c -> is_alnum c | None -> false) do
    advance t
  done;
  let text = String.sub t.src start (t.pos - start) in
  match List.assoc_opt text Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT text

let next t =
  skip_ws t;
  let l = loc t in
  let tok =
    match peek t with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number t
    | Some c when is_alpha c -> lex_word t
    | Some '\'' -> lex_char t l
    | Some '"' -> lex_string t l
    | Some c ->
      let two target result =
        advance t;
        if peek t = Some target then begin
          advance t;
          result
        end
        else None
      in
      let simple tok =
        advance t;
        tok
      in
      (match c with
      | ';' -> simple Token.SEMI
      | ',' -> simple Token.COMMA
      | ':' -> ( match two '=' (Some Token.ASSIGN) with Some tk -> tk | None -> Token.COLON)
      | '=' -> simple Token.EQ
      | '#' -> simple Token.NE
      | '<' -> (match two '=' (Some Token.LE) with Some tk -> tk | None -> Token.LT)
      | '>' -> (match two '=' (Some Token.GE) with Some tk -> tk | None -> Token.GT)
      | '+' -> simple Token.PLUS
      | '-' -> simple Token.MINUS
      | '*' -> simple Token.STAR
      | '(' -> simple Token.LPAREN
      | ')' -> simple Token.RPAREN
      | '[' -> simple Token.LBRACKET
      | ']' -> simple Token.RBRACKET
      | '^' -> simple Token.CARET
      | '.' -> (match two '.' (Some Token.DOTDOT) with Some tk -> tk | None -> Token.DOT)
      | c -> Diag.errorf_at l "unexpected character '%c'" c)
  in
  (tok, l)

let tokenize ~file src =
  let t = create ~file src in
  let rec go acc =
    let tok, l = next t in
    let acc = (tok, l) :: acc in
    match tok with Token.EOF -> List.rev acc | _ -> go acc
  in
  go []
