(** Pretty-printer from the raw AST back to MiniM3 concrete syntax.

    The output parses back to an equivalent module (same token-level
    semantics; layout normalized, expressions fully parenthesized). Round
    trips are checked both as a fixed point of [print ∘ parse] and
    semantically — the reprinted program must behave identically on the
    simulator. *)

val pp_ty : Format.formatter -> Ast.ty_expr -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_module : Format.formatter -> Ast.module_ -> unit

val module_to_string : Ast.module_ -> string

val reprint : file:string -> string -> string
(** Parse then print. *)
