(* Abstract syntax of MiniM3.

   The tree is deliberately close to Modula-3 concrete syntax: the paper's
   access-path notation (p.f qualify, p^ dereference, p[i] subscript) maps
   one-to-one onto [Field], [Deref] and [Index] nodes, and the two
   address-taking constructs (VAR actuals, WITH over a designator) are
   explicit in [With] and in call argument positions. *)

open Support

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

(* Type expressions as written in source; elaborated by Typecheck into
   Types.tid. *)
type ty_expr = { t_desc : ty_desc; t_loc : Loc.t }

and ty_desc =
  | Tname of Ident.t
  | Tint
  | Tbool
  | Tchar
  | Troot  (* ROOT, the top object type *)
  | Tarray of int option * ty_expr  (* ARRAY [0..n-1] OF T, or open ARRAY OF T *)
  | Trecord of field_decl list
  | Tref of string option * ty_expr  (* REF T, optionally BRANDED "brand" *)
  | Tobject of object_decl

and field_decl = { f_name : Ident.t; f_ty : ty_expr; f_loc : Loc.t }

and object_decl = {
  o_super : ty_expr option;  (* None means ROOT *)
  o_brand : string option;
  o_fields : field_decl list;
  o_methods : method_decl list;  (* METHODS section: new methods *)
  o_overrides : (Ident.t * Ident.t * Loc.t) list;  (* OVERRIDES m := Proc *)
}

and method_decl = {
  m_name : Ident.t;
  m_params : param_decl list;  (* excluding the implicit receiver *)
  m_ret : ty_expr option;
  m_impl : Ident.t option;  (* := Proc default implementation *)
  m_loc : Loc.t;
}

and param_mode = By_value | By_ref  (* VAR parameter *)

and param_decl = {
  p_name : Ident.t;
  p_mode : param_mode;
  p_ty : ty_expr;
  p_loc : Loc.t;
}

type expr = { e_desc : expr_desc; e_loc : Loc.t }

and expr_desc =
  | Int_lit of int
  | Bool_lit of bool
  | Char_lit of char
  | String_lit of string  (* only legal as a Print argument *)
  | Nil
  | Name of Ident.t
  | Field of expr * Ident.t  (* p.f — also method selection before a call *)
  | Deref of expr  (* p^ *)
  | Index of expr * expr  (* p[i] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of expr * expr list  (* callee is Name (proc) or Field (method) *)
  | New of ty_expr * expr list  (* NEW(T) or NEW(T, length) *)

type stmt = { s_desc : stmt_desc; s_loc : Loc.t }

and stmt_desc =
  | Assign of expr * expr  (* designator := expr *)
  | Call_stmt of expr  (* procedure or method call for effect *)
  | If of (expr * stmt list) list * stmt list  (* IF/ELSIF branches, ELSE *)
  | While of expr * stmt list
  | Repeat of stmt list * expr  (* REPEAT body UNTIL cond *)
  | Loop of stmt list  (* LOOP ... END, left by EXIT *)
  | For of Ident.t * expr * expr * int * stmt list  (* FOR i := a TO b BY k *)
  | Exit
  | Return of expr option
  | With of (Ident.t * expr) list * stmt list

type const_decl = { c_name : Ident.t; c_value : expr; c_loc : Loc.t }

type var_decl = {
  v_name : Ident.t;
  v_ty : ty_expr;
  v_init : expr option;
  v_loc : Loc.t;
}

type proc_decl = {
  pr_name : Ident.t;
  pr_params : param_decl list;
  pr_ret : ty_expr option;
  pr_consts : const_decl list;
  pr_locals : var_decl list;
  pr_body : stmt list;
  pr_loc : Loc.t;
}

type decl =
  | Dtype of Ident.t * ty_expr * Loc.t
  | Dconst of const_decl
  | Dvar of var_decl
  | Dproc of proc_decl

type module_ = {
  mod_name : Ident.t;
  mod_decls : decl list;
  mod_body : stmt list;  (* main body *)
  mod_loc : Loc.t;
}

(* Designators are the subset of expressions that denote locations. *)
let rec is_designator e =
  match e.e_desc with
  | Name _ -> true
  | Field (base, _) | Index (base, _) -> is_designator base
  | Deref base -> is_designator base || is_rvalue_pointer base
  | _ -> false

(* A dereference of any pointer-valued expression is a location even when the
   pointer itself is computed, e.g. [f(x)^]; MiniM3 restricts pointers to
   designators for simplicity, so this only admits designators. *)
and is_rvalue_pointer _ = false

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "DIV" | Mod -> "MOD"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=" | Ne -> "#"
  | And -> "AND" | Or -> "OR"

let unop_to_string = function Neg -> "-" | Not -> "NOT"
