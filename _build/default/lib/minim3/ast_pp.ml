open Support

let pf = Format.fprintf

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let escape_string s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_ty ppf (t : Ast.ty_expr) =
  match t.Ast.t_desc with
  | Ast.Tname n -> Ident.pp ppf n
  | Ast.Tint -> Format.pp_print_string ppf "INTEGER"
  | Ast.Tbool -> Format.pp_print_string ppf "BOOLEAN"
  | Ast.Tchar -> Format.pp_print_string ppf "CHAR"
  | Ast.Troot -> Format.pp_print_string ppf "ROOT"
  | Ast.Tarray (Some n, elem) -> pf ppf "ARRAY [0..%d] OF %a" (n - 1) pp_ty elem
  | Ast.Tarray (None, elem) -> pf ppf "ARRAY OF %a" pp_ty elem
  | Ast.Trecord fields ->
    pf ppf "RECORD@[<v 2>";
    List.iter (fun f -> pf ppf "@ %a" pp_field f) fields;
    pf ppf "@]@ END"
  | Ast.Tref (None, target) -> pf ppf "REF %a" pp_ty target
  | Ast.Tref (Some brand, target) ->
    pf ppf "BRANDED \"%s\" REF %a" (escape_string brand) pp_ty target
  | Ast.Tobject od -> pp_object ppf od

and pp_field ppf (f : Ast.field_decl) =
  pf ppf "%a: %a;" Ident.pp f.Ast.f_name pp_ty f.Ast.f_ty

and pp_object ppf (od : Ast.object_decl) =
  (match od.Ast.o_brand with
  | Some b -> pf ppf "BRANDED \"%s\" " (escape_string b)
  | None -> ());
  (match od.Ast.o_super with
  | Some s -> pf ppf "%a " pp_ty s
  | None -> ());
  pf ppf "OBJECT@[<v 2>";
  List.iter (fun f -> pf ppf "@ %a" pp_field f) od.Ast.o_fields;
  if od.Ast.o_methods <> [] then begin
    pf ppf "@]@ METHODS@[<v 2>";
    List.iter
      (fun (m : Ast.method_decl) ->
        pf ppf "@ %a (%a)%a%a;" Ident.pp m.Ast.m_name pp_params m.Ast.m_params
          pp_ret m.Ast.m_ret
          (fun ppf impl ->
            match impl with
            | Some p -> pf ppf " := %a" Ident.pp p
            | None -> ())
          m.Ast.m_impl)
      od.Ast.o_methods
  end;
  if od.Ast.o_overrides <> [] then begin
    pf ppf "@]@ OVERRIDES@[<v 2>";
    List.iter
      (fun (m, p, _) -> pf ppf "@ %a := %a;" Ident.pp m Ident.pp p)
      od.Ast.o_overrides
  end;
  pf ppf "@]@ END"

and pp_params ppf params =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    (fun ppf (p : Ast.param_decl) ->
      (match p.Ast.p_mode with
      | Ast.By_ref -> Format.pp_print_string ppf "VAR "
      | Ast.By_value -> ());
      pf ppf "%a: %a" Ident.pp p.Ast.p_name pp_ty p.Ast.p_ty)
    ppf params

and pp_ret ppf = function
  | Some t -> pf ppf ": %a" pp_ty t
  | None -> ()

(* Expressions are printed fully parenthesized: round-trip equality is
   semantic, not token-identical. *)
let rec pp_expr ppf (e : Ast.expr) =
  match e.Ast.e_desc with
  | Ast.Int_lit n -> if n < 0 then pf ppf "(%d)" n else Format.pp_print_int ppf n
  | Ast.Bool_lit true -> Format.pp_print_string ppf "TRUE"
  | Ast.Bool_lit false -> Format.pp_print_string ppf "FALSE"
  | Ast.Char_lit c -> pf ppf "'%s'" (escape_char c)
  | Ast.String_lit s -> pf ppf "\"%s\"" (escape_string s)
  | Ast.Nil -> Format.pp_print_string ppf "NIL"
  | Ast.Name n -> Ident.pp ppf n
  | Ast.Field (b, f) -> pf ppf "%a.%a" pp_expr b Ident.pp f
  | Ast.Deref b -> pf ppf "%a^" pp_expr b
  | Ast.Index (b, i) -> pf ppf "%a[%a]" pp_expr b pp_expr i
  | Ast.Binop (op, a, b) ->
    pf ppf "(%a %s %a)" pp_expr a (Ast.binop_to_string op) pp_expr b
  | Ast.Unop (Ast.Neg, a) -> pf ppf "(-%a)" pp_expr a
  | Ast.Unop (Ast.Not, a) -> pf ppf "(NOT %a)" pp_expr a
  | Ast.Call (callee, args) -> pf ppf "%a (%a)" pp_expr callee pp_args args
  | Ast.New (t, []) -> pf ppf "NEW (%a)" pp_ty t
  | Ast.New (t, args) -> pf ppf "NEW (%a, %a)" pp_ty t pp_args args

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let rec pp_stmt ppf (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Assign (lhs, rhs) -> pf ppf "%a := %a;" pp_expr lhs pp_expr rhs
  | Ast.Call_stmt e -> pf ppf "%a;" pp_expr e
  | Ast.If (branches, else_) ->
    List.iteri
      (fun i (cond, body) ->
        pf ppf "%s %a THEN@[<v 2>" (if i = 0 then "IF" else "ELSIF") pp_expr cond;
        pp_stmts ppf body;
        pf ppf "@]@ ")
      branches;
    if else_ <> [] then begin
      pf ppf "ELSE@[<v 2>";
      pp_stmts ppf else_;
      pf ppf "@]@ "
    end;
    pf ppf "END;"
  | Ast.While (cond, body) ->
    pf ppf "WHILE %a DO@[<v 2>" pp_expr cond;
    pp_stmts ppf body;
    pf ppf "@]@ END;"
  | Ast.Repeat (body, cond) ->
    pf ppf "REPEAT@[<v 2>";
    pp_stmts ppf body;
    pf ppf "@]@ UNTIL %a;" pp_expr cond
  | Ast.Loop body ->
    pf ppf "LOOP@[<v 2>";
    pp_stmts ppf body;
    pf ppf "@]@ END;"
  | Ast.For (v, lo, hi, step, body) ->
    pf ppf "FOR %a := %a TO %a" Ident.pp v pp_expr lo pp_expr hi;
    if step <> 1 then pf ppf " BY %d" step;
    pf ppf " DO@[<v 2>";
    pp_stmts ppf body;
    pf ppf "@]@ END;"
  | Ast.Exit -> Format.pp_print_string ppf "EXIT;"
  | Ast.Return None -> Format.pp_print_string ppf "RETURN;"
  | Ast.Return (Some e) -> pf ppf "RETURN %a;" pp_expr e
  | Ast.With (binds, body) ->
    pf ppf "WITH %a DO@[<v 2>"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (n, e) -> pf ppf "%a = %a" Ident.pp n pp_expr e))
      binds;
    pp_stmts ppf body;
    pf ppf "@]@ END;"

and pp_stmts ppf stmts = List.iter (fun s -> pf ppf "@ %a" pp_stmt s) stmts

let pp_proc ppf (p : Ast.proc_decl) =
  pf ppf "@[<v 0>PROCEDURE %a (%a)%a =@ " Ident.pp p.Ast.pr_name pp_params
    p.Ast.pr_params pp_ret p.Ast.pr_ret;
  if p.Ast.pr_consts <> [] then begin
    pf ppf "CONST@[<v 2>";
    List.iter
      (fun (c : Ast.const_decl) ->
        pf ppf "@ %a = %a;" Ident.pp c.Ast.c_name pp_expr c.Ast.c_value)
      p.Ast.pr_consts;
    pf ppf "@]@ "
  end;
  if p.Ast.pr_locals <> [] then begin
    pf ppf "VAR@[<v 2>";
    List.iter
      (fun (v : Ast.var_decl) ->
        pf ppf "@ %a: %a%a;" Ident.pp v.Ast.v_name pp_ty v.Ast.v_ty
          (fun ppf init ->
            match init with
            | Some e -> pf ppf " := %a" pp_expr e
            | None -> ())
          v.Ast.v_init)
      p.Ast.pr_locals;
    pf ppf "@]@ "
  end;
  pf ppf "BEGIN@[<v 2>";
  pp_stmts ppf p.Ast.pr_body;
  pf ppf "@]@ END %a;@]" Ident.pp p.Ast.pr_name

let pp_module ppf (m : Ast.module_) =
  pf ppf "@[<v 0>MODULE %a;@ " Ident.pp m.Ast.mod_name;
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dtype (name, ty, _) ->
        pf ppf "@ TYPE@ @[<v 2>  %a = %a;@]@ " Ident.pp name pp_ty ty
      | Ast.Dconst c ->
        pf ppf "@ CONST@ @[<v 2>  %a = %a;@]@ " Ident.pp c.Ast.c_name pp_expr
          c.Ast.c_value
      | Ast.Dvar v ->
        pf ppf "@ VAR@ @[<v 2>  %a: %a%a;@]@ " Ident.pp v.Ast.v_name pp_ty
          v.Ast.v_ty
          (fun ppf init ->
            match init with
            | Some e -> pf ppf " := %a" pp_expr e
            | None -> ())
          v.Ast.v_init
      | Ast.Dproc p -> pf ppf "@ %a@ " pp_proc p)
    m.Ast.mod_decls;
  pf ppf "@ BEGIN@[<v 2>";
  pp_stmts ppf m.Ast.mod_body;
  pf ppf "@]@ END %a.@]@." Ident.pp m.Ast.mod_name

let module_to_string m = Format.asprintf "%a" pp_module m

let reprint ~file src = module_to_string (Parser.parse_module ~file src)
