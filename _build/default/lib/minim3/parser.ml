open Support

type state = {
  toks : (Token.t * Loc.t) array;
  mutable pos : int;
}

let current st = fst st.toks.(st.pos)
let current_loc st = snd st.toks.(st.pos)

let lookahead st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Token.EOF

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let error st fmt =
  Format.kasprintf
    (fun msg ->
      Diag.errorf_at (current_loc st) "%s (found '%s')" msg
        (Token.to_string (current st)))
    fmt

let accept st tok =
  if Token.equal (current st) tok then begin
    advance st;
    true
  end
  else false

let expect st tok =
  if not (accept st tok) then error st "expected '%s'" (Token.to_string tok)

let expect_ident st =
  match current st with
  | Token.IDENT s ->
    advance st;
    Ident.intern s
  | _ -> error st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st : Ast.ty_expr =
  let loc = current_loc st in
  let mk t_desc : Ast.ty_expr = { t_desc; t_loc = loc } in
  match current st with
  | Token.IDENT "INTEGER" ->
    advance st;
    mk Ast.Tint
  | Token.IDENT "BOOLEAN" ->
    advance st;
    mk Ast.Tbool
  | Token.IDENT "CHAR" ->
    advance st;
    mk Ast.Tchar
  | Token.ROOT ->
    advance st;
    if Token.equal (current st) Token.OBJECT then
      mk (Ast.Tobject (parse_object_body st ~super:(Some (mk Ast.Troot)) ~brand:None))
    else mk Ast.Troot
  | Token.ARRAY ->
    advance st;
    if accept st Token.LBRACKET then begin
      let lo =
        match current st with
        | Token.INT n ->
          advance st;
          n
        | _ -> error st "expected array lower bound"
      in
      expect st Token.DOTDOT;
      let hi =
        match current st with
        | Token.INT n ->
          advance st;
          n
        | _ -> error st "expected array upper bound"
      in
      expect st Token.RBRACKET;
      expect st Token.OF;
      if lo <> 0 then Diag.errorf_at loc "array lower bound must be 0";
      if hi < lo then Diag.errorf_at loc "empty array range";
      mk (Ast.Tarray (Some (hi - lo + 1), parse_ty st))
    end
    else begin
      expect st Token.OF;
      mk (Ast.Tarray (None, parse_ty st))
    end
  | Token.RECORD ->
    advance st;
    let fields = parse_field_decls st in
    expect st Token.END;
    mk (Ast.Trecord fields)
  | Token.BRANDED ->
    advance st;
    let brand =
      match current st with
      | Token.STRING s ->
        advance st;
        Some s
      | _ -> Some "<anon-brand>"
    in
    (match current st with
    | Token.REF ->
      advance st;
      mk (Ast.Tref (brand, parse_ty st))
    | Token.OBJECT -> mk (Ast.Tobject (parse_object_body st ~super:None ~brand))
    | Token.IDENT name when Token.equal (lookahead st) Token.OBJECT ->
      advance st;
      let super = { Ast.t_desc = Ast.Tname (Ident.intern name); t_loc = loc } in
      mk (Ast.Tobject (parse_object_body st ~super:(Some super) ~brand))
    | Token.ROOT when Token.equal (lookahead st) Token.OBJECT ->
      advance st;
      let super = { Ast.t_desc = Ast.Troot; t_loc = loc } in
      mk (Ast.Tobject (parse_object_body st ~super:(Some super) ~brand))
    | _ -> error st "expected REF or OBJECT after BRANDED")
  | Token.REF ->
    advance st;
    mk (Ast.Tref (None, parse_ty st))
  | Token.OBJECT -> mk (Ast.Tobject (parse_object_body st ~super:None ~brand:None))
  | Token.IDENT name ->
    if Token.equal (lookahead st) Token.OBJECT then begin
      advance st;
      let super = { Ast.t_desc = Ast.Tname (Ident.intern name); t_loc = loc } in
      mk (Ast.Tobject (parse_object_body st ~super:(Some super) ~brand:None))
    end
    else begin
      advance st;
      mk (Ast.Tname (Ident.intern name))
    end
  | _ -> error st "expected a type"

and parse_field_decls st : Ast.field_decl list =
  (* fields: "a, b: T; c: U;" — runs until END/METHODS/OVERRIDES *)
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let names = parse_ident_list st in
      expect st Token.COLON;
      let ty = parse_ty st in
      expect st Token.SEMI;
      let fields =
        List.map (fun n -> { Ast.f_name = n; f_ty = ty; f_loc = loc }) names
      in
      go (List.rev_append fields acc)
    | _ -> List.rev acc
  in
  go []

and parse_ident_list st =
  let first = expect_ident st in
  let rec go acc = if accept st Token.COMMA then go (expect_ident st :: acc) else List.rev acc in
  go [ first ]

and parse_object_body st ~super ~brand : Ast.object_decl =
  expect st Token.OBJECT;
  let fields = parse_field_decls st in
  let methods = if accept st Token.METHODS then parse_method_decls st else [] in
  let overrides = if accept st Token.OVERRIDES then parse_overrides st else [] in
  expect st Token.END;
  { Ast.o_super = super; o_brand = brand; o_fields = fields;
    o_methods = methods; o_overrides = overrides }

and parse_method_decls st : Ast.method_decl list =
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let name = expect_ident st in
      expect st Token.LPAREN;
      let params = parse_params st in
      expect st Token.RPAREN;
      let ret = if accept st Token.COLON then Some (parse_ty st) else None in
      let impl = if accept st Token.ASSIGN then Some (expect_ident st) else None in
      expect st Token.SEMI;
      go ({ Ast.m_name = name; m_params = params; m_ret = ret; m_impl = impl; m_loc = loc } :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_overrides st =
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let name = expect_ident st in
      expect st Token.ASSIGN;
      let impl = expect_ident st in
      expect st Token.SEMI;
      go ((name, impl, loc) :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_params st : Ast.param_decl list =
  if Token.equal (current st) Token.RPAREN then []
  else begin
    let rec one acc =
      let loc = current_loc st in
      let mode = if accept st Token.VAR then Ast.By_ref else Ast.By_value in
      let names = parse_ident_list st in
      expect st Token.COLON;
      let ty = parse_ty st in
      let params =
        List.map
          (fun n -> { Ast.p_name = n; p_mode = mode; p_ty = ty; p_loc = loc })
          names
      in
      let acc = List.rev_append params acc in
      if accept st Token.SEMI then one acc else List.rev acc
    in
    one []
  end

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and mk_e st loc e_desc : Ast.expr =
  ignore st;
  { Ast.e_desc; e_loc = loc }

and parse_or st =
  let loc = current_loc st in
  let lhs = parse_and st in
  if accept st Token.OR then mk_e st loc (Ast.Binop (Ast.Or, lhs, parse_or st)) else lhs

and parse_and st =
  let loc = current_loc st in
  let lhs = parse_not st in
  if accept st Token.AND then mk_e st loc (Ast.Binop (Ast.And, lhs, parse_and st))
  else lhs

and parse_not st =
  let loc = current_loc st in
  if accept st Token.NOT then mk_e st loc (Ast.Unop (Ast.Not, parse_not st))
  else parse_relation st

and parse_relation st =
  let loc = current_loc st in
  let lhs = parse_additive st in
  let op =
    match current st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    mk_e st loc (Ast.Binop (op, lhs, parse_additive st))

and parse_additive st =
  let loc = current_loc st in
  let rec go lhs =
    match current st with
    | Token.PLUS ->
      advance st;
      go (mk_e st loc (Ast.Binop (Ast.Add, lhs, parse_multiplicative st)))
    | Token.MINUS ->
      advance st;
      go (mk_e st loc (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st)))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let loc = current_loc st in
  let rec go lhs =
    match current st with
    | Token.STAR ->
      advance st;
      go (mk_e st loc (Ast.Binop (Ast.Mul, lhs, parse_unary st)))
    | Token.DIV ->
      advance st;
      go (mk_e st loc (Ast.Binop (Ast.Div, lhs, parse_unary st)))
    | Token.MOD ->
      advance st;
      go (mk_e st loc (Ast.Binop (Ast.Mod, lhs, parse_unary st)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  let loc = current_loc st in
  if accept st Token.MINUS then mk_e st loc (Ast.Unop (Ast.Neg, parse_unary st))
  else parse_postfix st

and parse_postfix st =
  let rec go e =
    let loc = current_loc st in
    match current st with
    | Token.DOT ->
      advance st;
      let f = expect_ident st in
      go (mk_e st loc (Ast.Field (e, f)))
    | Token.CARET ->
      advance st;
      go (mk_e st loc (Ast.Deref e))
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      go (mk_e st loc (Ast.Index (e, idx)))
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      go (mk_e st loc (Ast.Call (e, args)))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  if Token.equal (current st) Token.RPAREN then []
  else begin
    let rec go acc =
      let acc = parse_expr st :: acc in
      if accept st Token.COMMA then go acc else List.rev acc
    in
    go []
  end

and parse_primary st =
  let loc = current_loc st in
  match current st with
  | Token.INT n ->
    advance st;
    mk_e st loc (Ast.Int_lit n)
  | Token.CHARLIT c ->
    advance st;
    mk_e st loc (Ast.Char_lit c)
  | Token.STRING s ->
    advance st;
    mk_e st loc (Ast.String_lit s)
  | Token.TRUE ->
    advance st;
    mk_e st loc (Ast.Bool_lit true)
  | Token.FALSE ->
    advance st;
    mk_e st loc (Ast.Bool_lit false)
  | Token.NIL ->
    advance st;
    mk_e st loc Ast.Nil
  | Token.NEW ->
    advance st;
    expect st Token.LPAREN;
    let ty = parse_ty st in
    let args = if accept st Token.COMMA then parse_args st else [] in
    expect st Token.RPAREN;
    mk_e st loc (Ast.New (ty, args))
  | Token.IDENT s ->
    advance st;
    mk_e st loc (Ast.Name (Ident.intern s))
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | _ -> error st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_stmts st : Ast.stmt list =
  let stops = [ Token.END; Token.ELSE; Token.ELSIF; Token.UNTIL; Token.EOF ] in
  let rec go acc =
    if List.exists (Token.equal (current st)) stops then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st : Ast.stmt =
  let loc = current_loc st in
  let mk s_desc : Ast.stmt = { Ast.s_desc; s_loc = loc } in
  match current st with
  | Token.IF ->
    advance st;
    let cond = parse_expr st in
    expect st Token.THEN;
    let body = parse_stmts st in
    let rec elsifs acc =
      if accept st Token.ELSIF then begin
        let c = parse_expr st in
        expect st Token.THEN;
        let b = parse_stmts st in
        elsifs ((c, b) :: acc)
      end
      else List.rev acc
    in
    let branches = (cond, body) :: elsifs [] in
    let else_ = if accept st Token.ELSE then parse_stmts st else [] in
    expect st Token.END;
    expect st Token.SEMI;
    mk (Ast.If (branches, else_))
  | Token.WHILE ->
    advance st;
    let cond = parse_expr st in
    expect st Token.DO;
    let body = parse_stmts st in
    expect st Token.END;
    expect st Token.SEMI;
    mk (Ast.While (cond, body))
  | Token.REPEAT ->
    advance st;
    let body = parse_stmts st in
    expect st Token.UNTIL;
    let cond = parse_expr st in
    expect st Token.SEMI;
    mk (Ast.Repeat (body, cond))
  | Token.LOOP ->
    advance st;
    let body = parse_stmts st in
    expect st Token.END;
    expect st Token.SEMI;
    mk (Ast.Loop body)
  | Token.FOR ->
    advance st;
    let v = expect_ident st in
    expect st Token.ASSIGN;
    let lo = parse_expr st in
    expect st Token.TO;
    let hi = parse_expr st in
    let step =
      if accept st Token.BY then begin
        match current st with
        | Token.INT n ->
          advance st;
          n
        | Token.MINUS ->
          advance st;
          (match current st with
          | Token.INT n ->
            advance st;
            -n
          | _ -> error st "expected step constant")
        | _ -> error st "expected step constant"
      end
      else 1
    in
    expect st Token.DO;
    let body = parse_stmts st in
    expect st Token.END;
    expect st Token.SEMI;
    mk (Ast.For (v, lo, hi, step, body))
  | Token.EXIT ->
    advance st;
    expect st Token.SEMI;
    mk Ast.Exit
  | Token.RETURN ->
    advance st;
    let v = if Token.equal (current st) Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    mk (Ast.Return v)
  | Token.WITH ->
    advance st;
    let rec bindings acc =
      let name = expect_ident st in
      expect st Token.EQ;
      let e = parse_expr st in
      let acc = (name, e) :: acc in
      if accept st Token.COMMA then bindings acc else List.rev acc
    in
    let binds = bindings [] in
    expect st Token.DO;
    let body = parse_stmts st in
    expect st Token.END;
    expect st Token.SEMI;
    mk (Ast.With (binds, body))
  | _ ->
    (* assignment or call statement *)
    let e = parse_expr st in
    if accept st Token.ASSIGN then begin
      let rhs = parse_expr st in
      expect st Token.SEMI;
      mk (Ast.Assign (e, rhs))
    end
    else begin
      expect st Token.SEMI;
      match e.Ast.e_desc with
      | Ast.Call _ -> mk (Ast.Call_stmt e)
      | _ -> Diag.errorf_at loc "expression statement must be a call"
    end

(* ------------------------------------------------------------------ *)
(* Declarations and modules                                           *)
(* ------------------------------------------------------------------ *)

let parse_var_decls st : Ast.var_decl list =
  (* after VAR: "a, b: T := e;" repeated while an identifier starts a line *)
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let names = parse_ident_list st in
      expect st Token.COLON;
      let ty = parse_ty st in
      let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
      expect st Token.SEMI;
      let decls =
        List.map
          (fun n -> { Ast.v_name = n; v_ty = ty; v_init = init; v_loc = loc })
          names
      in
      go (List.rev_append decls acc)
    | _ -> List.rev acc
  in
  go []

let parse_const_decls st : Ast.const_decl list =
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let name = expect_ident st in
      expect st Token.EQ;
      let value = parse_expr st in
      expect st Token.SEMI;
      go ({ Ast.c_name = name; c_value = value; c_loc = loc } :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_type_decls st =
  let rec go acc =
    match current st with
    | Token.IDENT _ ->
      let loc = current_loc st in
      let name = expect_ident st in
      expect st Token.EQ;
      let ty = parse_ty st in
      expect st Token.SEMI;
      go (Ast.Dtype (name, ty, loc) :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_proc st : Ast.proc_decl =
  let loc = current_loc st in
  expect st Token.PROCEDURE;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params = parse_params st in
  expect st Token.RPAREN;
  let ret = if accept st Token.COLON then Some (parse_ty st) else None in
  expect st Token.EQ;
  let consts = if accept st Token.CONST then parse_const_decls st else [] in
  let locals = if accept st Token.VAR then parse_var_decls st else [] in
  expect st Token.BEGIN;
  let body = parse_stmts st in
  expect st Token.END;
  let end_name = expect_ident st in
  if not (Ident.equal end_name name) then
    Diag.errorf_at (current_loc st) "procedure ends with '%s', expected '%s'"
      (Ident.name end_name) (Ident.name name);
  expect st Token.SEMI;
  { Ast.pr_name = name; pr_params = params; pr_ret = ret; pr_consts = consts;
    pr_locals = locals; pr_body = body; pr_loc = loc }

let parse_module_state st : Ast.module_ =
  let loc = current_loc st in
  expect st Token.MODULE;
  let name = expect_ident st in
  expect st Token.SEMI;
  let rec decls acc =
    match current st with
    | Token.TYPE ->
      advance st;
      (* [acc] is reversed overall, so a section must be prepended in
         reverse to come out in declaration order after the final rev. *)
      decls (List.rev_append (parse_type_decls st) acc)
    | Token.CONST ->
      advance st;
      let cs = parse_const_decls st in
      decls (List.rev_append (List.map (fun c -> Ast.Dconst c) cs) acc)
    | Token.VAR ->
      advance st;
      let vs = parse_var_decls st in
      decls (List.rev_append (List.map (fun v -> Ast.Dvar v) vs) acc)
    | Token.PROCEDURE -> decls (Ast.Dproc (parse_proc st) :: acc)
    | _ -> List.rev acc
  in
  let ds = decls [] in
  let body =
    if accept st Token.BEGIN then parse_stmts st
    else []
  in
  expect st Token.END;
  let end_name = expect_ident st in
  if not (Ident.equal end_name name) then
    Diag.errorf_at (current_loc st) "module ends with '%s', expected '%s'"
      (Ident.name end_name) (Ident.name name);
  expect st Token.DOT;
  { Ast.mod_name = name; mod_decls = ds; mod_body = body; mod_loc = loc }

let make_state ~file src =
  { toks = Array.of_list (Lexer.tokenize ~file src); pos = 0 }

let parse_module ~file src = parse_module_state (make_state ~file src)

let parse_expr_string src =
  let st = make_state ~file:"<expr>" src in
  let e = parse_expr st in
  if not (Token.equal (current st) Token.EOF) then error st "trailing tokens";
  e
