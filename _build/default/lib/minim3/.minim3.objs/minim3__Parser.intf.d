lib/minim3/parser.mli: Ast
