lib/minim3/lexer.ml: Buffer Diag List Loc String Support Token
