lib/minim3/ast_pp.mli: Ast Format
