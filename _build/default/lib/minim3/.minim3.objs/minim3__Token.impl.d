lib/minim3/token.ml: Printf
