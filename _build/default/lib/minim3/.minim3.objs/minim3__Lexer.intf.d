lib/minim3/lexer.mli: Support Token
