lib/minim3/typecheck.mli: Ast Tast
