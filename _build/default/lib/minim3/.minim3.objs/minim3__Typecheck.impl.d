lib/minim3/typecheck.ml: Array Ast Diag Ident List Loc Option Parser Support Tast Types
