lib/minim3/types.ml: Array Ast Format Hashtbl Ident List Support
