lib/minim3/types.mli: Ast Format Ident Support
