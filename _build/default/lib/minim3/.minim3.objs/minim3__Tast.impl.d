lib/minim3/tast.ml: Ast Ident List Loc Support Types
