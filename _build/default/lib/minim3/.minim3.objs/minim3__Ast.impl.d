lib/minim3/ast.ml: Ident Loc Support
