lib/minim3/parser.ml: Array Ast Diag Format Ident Lexer List Loc Support Token
