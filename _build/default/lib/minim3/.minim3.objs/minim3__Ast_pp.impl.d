lib/minim3/ast_pp.ml: Ast Buffer Format Ident List Parser String Support
