(* "k-tree" — manages integer sequences with k-ary trees (after Rodney
   Bates's K-trees). Internal nodes hold their children in open arrays, so
   every child access goes through a dope vector — which is why the paper
   found k-tree's residual redundant loads dominated by Encapsulation. *)

let source =
  {|
MODULE Ktree;

CONST
  Fanout = 4;
  LeafCap = 8;
  BuildSize = 2000;
  Lookups = 4000;

TYPE
  IntVec = REF ARRAY OF INTEGER;
  NodeVec = REF ARRAY OF Node;

  (* A sequence node: leaves carry elements, internal nodes carry children;
     every node caches the size of the sequence below it. *)
  Node = OBJECT
    size: INTEGER;
  METHODS
    get (index: INTEGER): INTEGER := GetAbstract;
    set (index: INTEGER; value: INTEGER) := SetAbstract;
    total (): INTEGER := TotalAbstract;
  END;

  Leaf = Node OBJECT
    elems: IntVec;
    used: INTEGER;
  OVERRIDES
    get := GetLeaf;
    set := SetLeaf;
    total := TotalLeaf;
  END;

  Inner = Node OBJECT
    kids: NodeVec;
    arity: INTEGER;
  OVERRIDES
    get := GetInner;
    set := SetInner;
    total := TotalInner;
  END;

VAR
  seed: INTEGER;
  root: Node;
  checksum: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

(* --- abstract defaults ------------------------------------------------ *)

PROCEDURE GetAbstract (self: Node; index: INTEGER): INTEGER =
  BEGIN
    RETURN index * 0;
  END GetAbstract;

PROCEDURE SetAbstract (self: Node; index: INTEGER; value: INTEGER) =
  BEGIN
  END SetAbstract;

PROCEDURE TotalAbstract (self: Node): INTEGER =
  BEGIN
    RETURN 0;
  END TotalAbstract;

(* --- leaves ------------------------------------------------------------ *)

PROCEDURE GetLeaf (self: Leaf; index: INTEGER): INTEGER =
  BEGIN
    IF (index >= 0) AND (index < self.used) THEN
      RETURN self.elems[index];
    END;
    RETURN 0;
  END GetLeaf;

PROCEDURE SetLeaf (self: Leaf; index: INTEGER; value: INTEGER) =
  BEGIN
    IF (index >= 0) AND (index < self.used) THEN
      self.elems[index] := value;
    END;
  END SetLeaf;

PROCEDURE TotalLeaf (self: Leaf): INTEGER =
  VAR s: INTEGER;
  BEGIN
    s := 0;
    FOR i := 0 TO self.used - 1 DO
      s := s + self.elems[i];
    END;
    RETURN s;
  END TotalLeaf;

(* --- internal nodes ------------------------------------------------------ *)

PROCEDURE GetInner (self: Inner; index: INTEGER): INTEGER =
  VAR k: INTEGER; kid: Node; rest: INTEGER;
  BEGIN
    k := 0;
    rest := index;
    WHILE k < self.arity DO
      kid := self.kids[k];
      IF rest < kid.size THEN
        RETURN kid.get (rest);
      END;
      rest := rest - kid.size;
      k := k + 1;
    END;
    RETURN 0;
  END GetInner;

PROCEDURE SetInner (self: Inner; index: INTEGER; value: INTEGER) =
  VAR k: INTEGER; kid: Node; rest: INTEGER;
  BEGIN
    k := 0;
    rest := index;
    WHILE k < self.arity DO
      kid := self.kids[k];
      IF rest < kid.size THEN
        kid.set (rest, value);
        RETURN;
      END;
      rest := rest - kid.size;
      k := k + 1;
    END;
  END SetInner;

PROCEDURE TotalInner (self: Inner): INTEGER =
  VAR s: INTEGER;
  BEGIN
    s := 0;
    FOR k := 0 TO self.arity - 1 DO
      s := s + self.kids[k].total ();
    END;
    RETURN s;
  END TotalInner;

(* --- construction ---------------------------------------------------------- *)

PROCEDURE BuildLeaf (count: INTEGER; base: INTEGER): Leaf =
  VAR l: Leaf;
  BEGIN
    l := NEW (Leaf);
    l.elems := NEW (IntVec, LeafCap);
    l.used := count;
    l.size := count;
    FOR i := 0 TO count - 1 DO
      l.elems[i] := base + i;
    END;
    RETURN l;
  END BuildLeaf;

(* Build a balanced tree over [base .. base+count-1]. *)
PROCEDURE Build (count: INTEGER; base: INTEGER): Node =
  VAR
    node: Inner; share: INTEGER; extra: INTEGER; give: INTEGER;
    offset: INTEGER; arity: INTEGER;
  BEGIN
    IF count <= LeafCap THEN
      RETURN BuildLeaf (count, base);
    END;
    node := NEW (Inner);
    arity := Fanout;
    node.kids := NEW (NodeVec, arity);
    node.arity := arity;
    node.size := count;
    share := count DIV arity;
    extra := count MOD arity;
    offset := 0;
    FOR k := 0 TO arity - 1 DO
      give := share;
      IF k < extra THEN
        give := give + 1;
      END;
      node.kids[k] := Build (give, base + offset);
      offset := offset + give;
    END;
    RETURN node;
  END Build;

BEGIN
  seed := 3163;
  checksum := 0;
  root := Build (BuildSize, 1);
  Print ("size=");  PrintInt (root.size);     PrintLn ();
  Print ("total="); PrintInt (root.total ()); PrintLn ();
  FOR i := 1 TO Lookups DO
    checksum := checksum + root.get (Rand (BuildSize));
  END;
  FOR i := 1 TO Lookups DIV 4 DO
    root.set (Rand (BuildSize), Rand (1000));
  END;
  Print ("after="); PrintInt (root.total ()); PrintLn ();
  Print ("checksum="); PrintInt (checksum); PrintLn ();
END Ktree.
|}

let workload =
  { Workload.name = "ktree";
    description = "integer sequences managed with k-ary trees";
    source;
    dynamic = true }
