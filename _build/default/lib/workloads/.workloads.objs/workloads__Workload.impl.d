lib/workloads/workload.ml: Ir List String
