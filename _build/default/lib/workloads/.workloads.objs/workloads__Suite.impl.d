lib/workloads/suite.ml: List W_dformat W_dom W_format W_ktree W_m2tom3 W_m3cg W_postcard W_pp W_slisp W_write_pickle Workload
