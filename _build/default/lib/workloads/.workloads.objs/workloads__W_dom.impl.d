lib/workloads/w_dom.ml: Workload
