lib/workloads/workload.mli: Ir
