lib/workloads/w_dformat.ml: Workload
