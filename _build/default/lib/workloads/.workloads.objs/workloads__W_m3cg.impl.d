lib/workloads/w_m3cg.ml: Workload
