lib/workloads/w_write_pickle.ml: Workload
