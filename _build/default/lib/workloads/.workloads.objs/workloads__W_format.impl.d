lib/workloads/w_format.ml: Workload
