lib/workloads/w_m2tom3.ml: Workload
