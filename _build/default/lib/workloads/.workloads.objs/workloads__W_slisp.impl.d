lib/workloads/w_slisp.ml: Workload
