lib/workloads/w_pp.ml: Workload
