lib/workloads/w_postcard.ml: Workload
