lib/workloads/w_ktree.ml: Workload
