type t = {
  name : string;
  description : string;
  source : string;
  dynamic : bool;
}

(* Count the lines that carry code: not blank, not comment-only. Nested
   comments are tracked the same way the lexer tracks them. *)
let source_lines t =
  let lines = String.split_on_char '\n' t.source in
  let depth = ref 0 in
  let count = ref 0 in
  List.iter
    (fun line ->
      let has_code = ref false in
      let n = String.length line in
      let i = ref 0 in
      while !i < n do
        let two = !i + 1 < n in
        if !depth > 0 then begin
          if two && line.[!i] = '*' && line.[!i + 1] = ')' then begin
            decr depth;
            incr i
          end
          else if two && line.[!i] = '(' && line.[!i + 1] = '*' then begin
            incr depth;
            incr i
          end
        end
        else if two && line.[!i] = '(' && line.[!i + 1] = '*' then begin
          incr depth;
          incr i
        end
        else if line.[!i] <> ' ' && line.[!i] <> '\t' && line.[!i] <> '\r' then
          has_code := true;
        incr i
      done;
      if !has_code then incr count)
    lines;
  !count

let lower t = Ir.Lower.lower_string ~file:t.name t.source
