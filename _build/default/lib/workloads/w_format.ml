(* "format" — a line-filling text formatter (the paper's smallest benchmark,
   a 395-line Liskov & Guttag exercise). Array- and list-heavy: words are
   open character arrays threaded on a list, lines collect words and are
   justified to a fixed width. *)

let source =
  {|
MODULE Format;

CONST
  LineWidth = 60;
  WordCount = 2600;

TYPE
  CharVec = REF ARRAY OF CHAR;
  Word = OBJECT
    text: CharVec;
    len: INTEGER;
    next: Word;
  END;
  Line = OBJECT
    first: Word;     (* words of this line, linked via next *)
    count: INTEGER;  (* number of words *)
    width: INTEGER;  (* total characters excluding separators *)
    next: Line;
  END;

VAR
  seed: INTEGER;
  firstWord: Word;
  lastWord: Word;
  firstLine: Line;
  lastLine: Line;
  lineCount: INTEGER;
  checksum: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

PROCEDURE MakeWord (len: INTEGER): Word =
  VAR w: Word;
  BEGIN
    w := NEW (Word);
    w.text := NEW (CharVec, len);
    w.len := len;
    w.next := NIL;
    FOR i := 0 TO len - 1 DO
      w.text[i] := Chr (Ord ('a') + Rand (26));
    END;
    RETURN w;
  END MakeWord;

PROCEDURE AppendWord (w: Word) =
  BEGIN
    IF firstWord = NIL THEN
      firstWord := w;
    ELSE
      lastWord.next := w;
    END;
    lastWord := w;
  END AppendWord;

PROCEDURE BuildDocument () =
  VAR len: INTEGER;
  BEGIN
    FOR i := 1 TO WordCount DO
      len := 2 + Rand (9);
      AppendWord (MakeWord (len));
    END;
  END BuildDocument;

PROCEDURE NewLine (): Line =
  VAR l: Line;
  BEGIN
    l := NEW (Line);
    l.first := NIL;
    l.count := 0;
    l.width := 0;
    l.next := NIL;
    IF firstLine = NIL THEN
      firstLine := l;
    ELSE
      lastLine.next := l;
    END;
    lastLine := l;
    lineCount := lineCount + 1;
    RETURN l;
  END NewLine;

(* Greedy line filling: a word joins the current line when it fits with
   one separating space per word already present. *)
PROCEDURE FillLines () =
  VAR w: Word; rest: Word; cur: Line; needed: INTEGER; tail: Word;
  BEGIN
    cur := NewLine ();
    w := firstWord;
    WHILE w # NIL DO
      rest := w.next;
      w.next := NIL;
      needed := cur.width + cur.count + w.len;
      IF (cur.count > 0) AND (needed > LineWidth) THEN
        cur := NewLine ();
      END;
      IF cur.first = NIL THEN
        cur.first := w;
      ELSE
        tail := cur.first;
        WHILE tail.next # NIL DO
          tail := tail.next;
        END;
        tail.next := w;
      END;
      cur.count := cur.count + 1;
      cur.width := cur.width + w.len;
      w := rest;
    END;
  END FillLines;

(* Justification: distribute the slack as extra spaces between words, the
   leftmost gaps absorbing the remainder. *)
PROCEDURE GapWidth (l: Line; gapIndex: INTEGER): INTEGER =
  VAR slack: INTEGER; gaps: INTEGER; base: INTEGER; extra: INTEGER;
  BEGIN
    gaps := l.count - 1;
    IF gaps <= 0 THEN RETURN 0; END;
    slack := LineWidth - l.width;
    base := slack DIV gaps;
    extra := slack MOD gaps;
    IF gapIndex < extra THEN
      RETURN base + 1;
    END;
    RETURN base;
  END GapWidth;

PROCEDURE EmitWord (w: Word) =
  BEGIN
    FOR i := 0 TO w.len - 1 DO
      PrintChar (w.text[i]);
      checksum := checksum + Ord (w.text[i]);
    END;
  END EmitWord;

PROCEDURE RenderLine (l: Line; justify: BOOLEAN) =
  VAR w: Word; gap: INTEGER; spaces: INTEGER;
  BEGIN
    w := l.first;
    gap := 0;
    WHILE w # NIL DO
      EmitWord (w);
      IF w.next # NIL THEN
        IF justify THEN
          spaces := GapWidth (l, gap);
        ELSE
          spaces := 1;
        END;
        FOR k := 1 TO spaces DO
          PrintChar (' ');
        END;
        checksum := checksum + spaces;
      END;
      gap := gap + 1;
      w := w.next;
    END;
    PrintLn ();
  END RenderLine;

PROCEDURE Render () =
  VAR l: Line;
  BEGIN
    l := firstLine;
    WHILE l # NIL DO
      (* the last line of a paragraph is never justified *)
      RenderLine (l, l.next # NIL);
      l := l.next;
    END;
  END Render;

BEGIN
  seed := 4711;
  firstWord := NIL;
  lastWord := NIL;
  firstLine := NIL;
  lastLine := NIL;
  lineCount := 0;
  checksum := 0;
  BuildDocument ();
  FillLines ();
  Render ();
  Print ("lines="); PrintInt (lineCount); PrintLn ();
  Print ("checksum="); PrintInt (checksum); PrintLn ();
END Format.
|}

let workload =
  { Workload.name = "format";
    description = "line-filling and justifying text formatter";
    source;
    dynamic = true }
