(* "slisp" — a small Lisp interpreter, the paper's most heap-intensive
   benchmark (27% of instructions are heap loads). S-expressions are an
   object hierarchy; car/cdr/eval/apply all dispatch dynamically; the
   environment is an assoc list of pairs, so evaluation is one long chain
   of pointer loads. *)

let source =
  {|
MODULE Slisp;

CONST
  SymQuote = 1;
  SymIf = 2;
  SymLambda = 3;
  SymN = 5;
  SymTri = 6;
  SymFib = 7;
  SymA = 8;
  SymB = 9;
  PrimAdd = 10;
  PrimSub = 11;
  PrimMul = 12;
  PrimLess = 13;
  Rounds = 130;

TYPE
  Obj = OBJECT
  METHODS
    car (): Obj := CarDefault;
    cdr (): Obj := CdrDefault;
    num (): INTEGER := NumDefault;
    symId (): INTEGER := SymDefault;
    eval (env: Obj): Obj := EvalDefault;
    apply (args: Obj; env: Obj): Obj := ApplyDefault;
  END;

  Num = Obj OBJECT
    n: INTEGER;
  OVERRIDES
    num := NumNum;
    eval := EvalNum;
  END;

  Sym = Obj OBJECT
    id: INTEGER;
  OVERRIDES
    symId := SymSym;
    eval := EvalSym;
  END;

  Pair = Obj OBJECT
    head, tail: Obj;
  OVERRIDES
    car := CarPair;
    cdr := CdrPair;
    eval := EvalPair;
  END;

  Prim = Obj OBJECT
    code: INTEGER;
  OVERRIDES
    apply := ApplyPrim;
  END;

  Closure = Obj OBJECT
    params: Obj;  (* list of symbols *)
    body: Obj;
    home: Obj;    (* captured environment *)
  OVERRIDES
    apply := ApplyClosure;
  END;

VAR
  seed: INTEGER;
  nil: Obj;
  genv: Obj;  (* global environment: list of (sym . value) pairs *)
  evals: INTEGER;
  checksum: INTEGER;

(* --- constructors ------------------------------------------------------- *)

PROCEDURE Cons (a: Obj; d: Obj): Pair =
  VAR p: Pair;
  BEGIN
    p := NEW (Pair);
    p.head := a;
    p.tail := d;
    RETURN p;
  END Cons;

PROCEDURE MkNum (value: INTEGER): Num =
  VAR x: Num;
  BEGIN
    x := NEW (Num);
    x.n := value;
    RETURN x;
  END MkNum;

PROCEDURE MkSym (id: INTEGER): Sym =
  VAR s: Sym;
  BEGIN
    s := NEW (Sym);
    s.id := id;
    RETURN s;
  END MkSym;

PROCEDURE MkPrim (code: INTEGER): Prim =
  VAR p: Prim;
  BEGIN
    p := NEW (Prim);
    p.code := code;
    RETURN p;
  END MkPrim;

PROCEDURE List1 (a: Obj): Obj =
  BEGIN RETURN Cons (a, nil); END List1;

PROCEDURE List2 (a: Obj; b: Obj): Obj =
  BEGIN RETURN Cons (a, Cons (b, nil)); END List2;

PROCEDURE List3 (a: Obj; b: Obj; c: Obj): Obj =
  BEGIN RETURN Cons (a, Cons (b, Cons (c, nil))); END List3;

PROCEDURE List4 (a: Obj; b: Obj; c: Obj; d: Obj): Obj =
  BEGIN RETURN Cons (a, Cons (b, Cons (c, Cons (d, nil)))); END List4;

(* --- accessors ------------------------------------------------------------ *)

PROCEDURE CarDefault (self: Obj): Obj = BEGIN RETURN nil; END CarDefault;
PROCEDURE CdrDefault (self: Obj): Obj = BEGIN RETURN nil; END CdrDefault;
PROCEDURE NumDefault (self: Obj): INTEGER = BEGIN RETURN 0; END NumDefault;
PROCEDURE SymDefault (self: Obj): INTEGER = BEGIN RETURN -1; END SymDefault;

PROCEDURE CarPair (self: Pair): Obj = BEGIN RETURN self.head; END CarPair;
PROCEDURE CdrPair (self: Pair): Obj = BEGIN RETURN self.tail; END CdrPair;
PROCEDURE NumNum (self: Num): INTEGER = BEGIN RETURN self.n; END NumNum;
PROCEDURE SymSym (self: Sym): INTEGER = BEGIN RETURN self.id; END SymSym;

(* --- environment ------------------------------------------------------------ *)

PROCEDURE Lookup (env: Obj; id: INTEGER): Obj =
  VAR walk: Obj; entry: Obj;
  BEGIN
    walk := env;
    WHILE walk # nil DO
      entry := walk.car ();
      IF entry.car ().symId () = id THEN
        RETURN entry.cdr ();
      END;
      walk := walk.cdr ();
    END;
    RETURN nil;
  END Lookup;

PROCEDURE Define (id: INTEGER; value: Obj) =
  BEGIN
    genv := Cons (Cons (MkSym (id), value), genv);
  END Define;

PROCEDURE Extend (params: Obj; args: Obj; env: Obj): Obj =
  VAR out: Obj; p: Obj; a: Obj;
  BEGIN
    out := env;
    p := params;
    a := args;
    WHILE p # nil DO
      out := Cons (Cons (p.car (), a.car ()), out);
      p := p.cdr ();
      a := a.cdr ();
    END;
    RETURN out;
  END Extend;

(* --- evaluation --------------------------------------------------------------- *)

PROCEDURE EvalDefault (self: Obj; env: Obj): Obj =
  BEGIN RETURN self; END EvalDefault;

PROCEDURE EvalNum (self: Num; env: Obj): Obj =
  BEGIN
    evals := evals + 1;
    RETURN self;
  END EvalNum;

PROCEDURE EvalSym (self: Sym; env: Obj): Obj =
  BEGIN
    evals := evals + 1;
    RETURN Lookup (env, self.id);
  END EvalSym;

PROCEDURE EvalList (exprs: Obj; env: Obj): Obj =
  BEGIN
    IF exprs = nil THEN
      RETURN nil;
    END;
    RETURN Cons (exprs.car ().eval (env), EvalList (exprs.cdr (), env));
  END EvalList;

PROCEDURE Truthy (v: Obj): BOOLEAN =
  BEGIN
    RETURN v.num () # 0;
  END Truthy;

PROCEDURE EvalPair (self: Pair; env: Obj): Obj =
  VAR opId: INTEGER; fn: Obj; clo: Closure;
  BEGIN
    evals := evals + 1;
    opId := self.head.symId ();
    IF opId = SymQuote THEN
      RETURN self.tail.car ();
    ELSIF opId = SymIf THEN
      IF Truthy (self.tail.car ().eval (env)) THEN
        RETURN self.tail.cdr ().car ().eval (env);
      END;
      RETURN self.tail.cdr ().cdr ().car ().eval (env);
    ELSIF opId = SymLambda THEN
      clo := NEW (Closure);
      clo.params := self.tail.car ();
      clo.body := self.tail.cdr ().car ();
      clo.home := env;
      RETURN clo;
    END;
    fn := self.head.eval (env);
    RETURN fn.apply (EvalList (self.tail, env), env);
  END EvalPair;

PROCEDURE ApplyDefault (self: Obj; args: Obj; env: Obj): Obj =
  BEGIN RETURN nil; END ApplyDefault;

PROCEDURE ApplyPrim (self: Prim; args: Obj; env: Obj): Obj =
  VAR x: INTEGER; y: INTEGER;
  BEGIN
    x := args.car ().num ();
    y := args.cdr ().car ().num ();
    IF self.code = PrimAdd THEN
      RETURN MkNum (x + y);
    ELSIF self.code = PrimSub THEN
      RETURN MkNum (x - y);
    ELSIF self.code = PrimMul THEN
      RETURN MkNum ((x * y) MOD 65521);
    ELSIF self.code = PrimLess THEN
      IF x < y THEN RETURN MkNum (1); END;
      RETURN MkNum (0);
    END;
    RETURN nil;
  END ApplyPrim;

PROCEDURE ApplyClosure (self: Closure; args: Obj; env: Obj): Obj =
  BEGIN
    RETURN self.body.eval (Extend (self.params, args, self.home));
  END ApplyClosure;

(* --- the interpreted programs ---------------------------------------------------- *)

(* (lambda (n) (if (< n 1) 0 (+ n (tri (- n 1))))) *)
PROCEDURE DefineTri () =
  VAR body: Obj; lam: Obj;
  BEGIN
    body :=
      List4 (MkSym (SymIf),
             List3 (MkSym (PrimLess), MkSym (SymN), MkNum (1)),
             MkNum (0),
             List3 (MkSym (PrimAdd),
                    MkSym (SymN),
                    List2 (MkSym (SymTri),
                           List3 (MkSym (PrimSub), MkSym (SymN), MkNum (1)))));
    lam := List3 (MkSym (SymLambda), List1 (MkSym (SymN)), body);
    Define (SymTri, lam.eval (genv));
  END DefineTri;

(* (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) *)
PROCEDURE DefineFib () =
  VAR body: Obj; lam: Obj;
  BEGIN
    body :=
      List4 (MkSym (SymIf),
             List3 (MkSym (PrimLess), MkSym (SymN), MkNum (2)),
             MkSym (SymN),
             List3 (MkSym (PrimAdd),
                    List2 (MkSym (SymFib),
                           List3 (MkSym (PrimSub), MkSym (SymN), MkNum (1))),
                    List2 (MkSym (SymFib),
                           List3 (MkSym (PrimSub), MkSym (SymN), MkNum (2)))));
    lam := List3 (MkSym (SymLambda), List1 (MkSym (SymN)), body);
    Define (SymFib, lam.eval (genv));
  END DefineFib;

PROCEDURE CallUnary (fnSym: INTEGER; arg: INTEGER): INTEGER =
  VAR expr: Obj;
  BEGIN
    expr := List2 (MkSym (fnSym), MkNum (arg));
    RETURN expr.eval (genv).num ();
  END CallUnary;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

BEGIN
  seed := 77;
  evals := 0;
  checksum := 0;
  nil := NEW (Obj);
  genv := nil;
  Define (PrimAdd, MkPrim (PrimAdd));
  Define (PrimSub, MkPrim (PrimSub));
  Define (PrimMul, MkPrim (PrimMul));
  Define (PrimLess, MkPrim (PrimLess));
  DefineTri ();
  DefineFib ();
  Print ("tri(24)="); PrintInt (CallUnary (SymTri, 24)); PrintLn ();
  Print ("fib(11)="); PrintInt (CallUnary (SymFib, 11)); PrintLn ();
  FOR round := 1 TO Rounds DO
    checksum := checksum + CallUnary (SymTri, 10 + Rand (14));
    checksum := checksum + CallUnary (SymFib, 8 + Rand (6));
  END;
  Print ("evals=");    PrintInt (evals);    PrintLn ();
  Print ("checksum="); PrintInt (checksum); PrintLn ();
END Slisp.
|}

let workload =
  { Workload.name = "slisp";
    description = "small Lisp interpreter over an object s-expression heap";
    source;
    dynamic = true }
