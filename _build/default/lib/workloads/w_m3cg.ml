(* "m3cg" — a code generator: expression/statement trees are compiled to a
   stack-machine instruction vector, a peephole pass cleans the code, a
   tiny register allocator assigns the stack slots, and a final pass
   "emits" (checksums) the result. The biggest program in the suite, as in
   the paper. *)

let source =
  {|
MODULE M3cg;

CONST
  FunCount = 300;
  MaxDepth = 5;
  CodeCap = 900;
  RegCount = 8;
  (* opcodes *)
  OpPush = 1;    (* push constant *)
  OpLoad = 2;    (* push variable *)
  OpStore = 3;   (* pop into variable *)
  OpAdd = 4;
  OpSub = 5;
  OpMul = 6;
  OpNeg = 7;
  OpJz = 8;      (* jump if zero *)
  OpJmp = 9;
  OpRet = 10;
  OpNop = 11;

TYPE
  (* --- source trees ------------------------------------------------- *)
  Expr = OBJECT
  METHODS
    gen (cg: Codegen) := GenAbstract;
    depth (): INTEGER := DepthAbstract;
  END;

  Const = Expr OBJECT
    value: INTEGER;
  OVERRIDES
    gen := GenConst;
    depth := DepthLeaf;
  END;

  Local = Expr OBJECT
    slot: INTEGER;
  OVERRIDES
    gen := GenLocal;
    depth := DepthLeaf;
  END;

  Unary = Expr OBJECT
    sub: Expr;
  OVERRIDES
    gen := GenUnary;
    depth := DepthUnary;
  END;

  Binary = Expr OBJECT
    op: INTEGER;  (* OpAdd/OpSub/OpMul *)
    left, right: Expr;
  OVERRIDES
    gen := GenBinary;
    depth := DepthBinary;
  END;

  Cond = Expr OBJECT
    test, then, else: Expr;
  OVERRIDES
    gen := GenCond;
    depth := DepthCond;
  END;

  (* --- generated code ------------------------------------------------- *)
  Instr = RECORD
    op: INTEGER;
    arg: INTEGER;
  END;

  Code = REF ARRAY OF Instr;

  Codegen = OBJECT
    code: Code;
    used: INTEGER;
    maxStack: INTEGER;
    curStack: INTEGER;
    labels: INTEGER;
  END;

  Fun = OBJECT
    body: Expr;
    cg: Codegen;
    next: Fun;
  END;

  (* A debug-only code buffer, used exclusively through its own type and
     never stored into a Codegen-typed location: selective merging keeps
     it out of TypeRefs(Codegen) (m3cg is the paper's other program where
     SMFieldTypeRefs improves on FieldTypeDecl). *)
  DebugCodegen = Codegen OBJECT
    verbosity: INTEGER;
  END;

VAR
  seed: INTEGER;
  funs: Fun;
  lastFun: Fun;
  emitted: INTEGER;
  removedNops: INTEGER;
  foldedPairs: INTEGER;
  checksum: INTEGER;
  regs: ARRAY [0..7] OF INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

(* --- depth methods (used by the allocator) ----------------------------- *)

PROCEDURE DepthAbstract (self: Expr): INTEGER = BEGIN RETURN 0; END DepthAbstract;
PROCEDURE DepthLeaf (self: Expr): INTEGER = BEGIN RETURN 1; END DepthLeaf;

PROCEDURE DepthUnary (self: Unary): INTEGER =
  BEGIN RETURN self.sub.depth (); END DepthUnary;

PROCEDURE DepthBinary (self: Binary): INTEGER =
  VAR l: INTEGER; r: INTEGER;
  BEGIN
    l := self.left.depth ();
    r := self.right.depth ();
    RETURN Max (l, r + 1);
  END DepthBinary;

PROCEDURE DepthCond (self: Cond): INTEGER =
  BEGIN
    RETURN Max (self.test.depth (),
                Max (self.then.depth (), self.else.depth ()));
  END DepthCond;

(* --- emission ------------------------------------------------------------ *)

PROCEDURE Emit (cg: Codegen; op: INTEGER; arg: INTEGER) =
  BEGIN
    IF cg.used < Number (cg.code) THEN
      cg.code[cg.used].op := op;
      cg.code[cg.used].arg := arg;
      cg.used := cg.used + 1;
    END;
    IF (op = OpPush) OR (op = OpLoad) THEN
      cg.curStack := cg.curStack + 1;
      IF cg.curStack > cg.maxStack THEN
        cg.maxStack := cg.curStack;
      END;
    ELSIF (op = OpAdd) OR (op = OpSub) OR (op = OpMul) OR (op = OpStore) THEN
      cg.curStack := cg.curStack - 1;
    END;
  END Emit;

PROCEDURE GenAbstract (self: Expr; cg: Codegen) =
  BEGIN
    Emit (cg, OpNop, 0);
  END GenAbstract;

PROCEDURE GenConst (self: Const; cg: Codegen) =
  BEGIN
    Emit (cg, OpPush, self.value);
  END GenConst;

PROCEDURE GenLocal (self: Local; cg: Codegen) =
  BEGIN
    Emit (cg, OpLoad, self.slot);
  END GenLocal;

PROCEDURE GenUnary (self: Unary; cg: Codegen) =
  BEGIN
    self.sub.gen (cg);
    Emit (cg, OpNeg, 0);
  END GenUnary;

PROCEDURE GenBinary (self: Binary; cg: Codegen) =
  BEGIN
    self.left.gen (cg);
    self.right.gen (cg);
    Emit (cg, self.op, 0);
  END GenBinary;

PROCEDURE GenCond (self: Cond; cg: Codegen) =
  VAR elseLabel: INTEGER; endLabel: INTEGER;
  BEGIN
    elseLabel := cg.labels;
    endLabel := cg.labels + 1;
    cg.labels := cg.labels + 2;
    self.test.gen (cg);
    Emit (cg, OpJz, elseLabel);
    cg.curStack := cg.curStack - 1;
    self.then.gen (cg);
    Emit (cg, OpJmp, endLabel);
    (* the two arms balance the stack; model the join *)
    cg.curStack := cg.curStack - 1;
    self.else.gen (cg);
  END GenCond;

(* --- peephole: drop nops, fold push/neg pairs ---------------------------- *)

PROCEDURE Peephole (cg: Codegen) =
  VAR w: INTEGER; op: INTEGER;
  BEGIN
    w := 0;
    FOR r := 0 TO cg.used - 1 DO
      op := cg.code[r].op;
      IF op = OpNop THEN
        removedNops := removedNops + 1;
      ELSIF (op = OpNeg) AND (w > 0) AND (cg.code[w - 1].op = OpPush) THEN
        cg.code[w - 1].arg := 0 - cg.code[w - 1].arg;
        foldedPairs := foldedPairs + 1;
      ELSE
        cg.code[w].op := op;
        cg.code[w].arg := cg.code[r].arg;
        w := w + 1;
      END;
    END;
    cg.used := w;
  END Peephole;

(* --- a tiny register allocator: map stack depths to registers ------------- *)

PROCEDURE Allocate (cg: Codegen) =
  VAR depth: INTEGER; op: INTEGER;
  BEGIN
    depth := 0;
    FOR k := 0 TO cg.used - 1 DO
      op := cg.code[k].op;
      IF (op = OpPush) OR (op = OpLoad) THEN
        regs[depth MOD RegCount] := regs[depth MOD RegCount] + 1;
        depth := depth + 1;
      ELSIF (op = OpAdd) OR (op = OpSub) OR (op = OpMul) OR (op = OpStore) THEN
        IF depth > 0 THEN depth := depth - 1; END;
      END;
    END;
  END Allocate;

(* --- evaluation of the generated code (the "emit" checksum) -------------- *)

PROCEDURE RunCode (cg: Codegen): INTEGER =
  VAR
    stack: ARRAY [0..31] OF INTEGER;
    sp: INTEGER; pc: INTEGER; op: INTEGER; a: INTEGER; b: INTEGER;
  BEGIN
    sp := 0;
    pc := 0;
    WHILE pc < cg.used DO
      op := cg.code[pc].op;
      IF op = OpPush THEN
        IF sp < 32 THEN stack[sp] := cg.code[pc].arg; END;
        sp := sp + 1;
      ELSIF op = OpLoad THEN
        IF sp < 32 THEN stack[sp] := regs[cg.code[pc].arg MOD RegCount]; END;
        sp := sp + 1;
      ELSIF (op = OpAdd) OR (op = OpSub) OR (op = OpMul) THEN
        IF sp >= 2 THEN
          a := stack[sp - 2];
          b := stack[sp - 1];
          IF op = OpAdd THEN
            stack[sp - 2] := (a + b) MOD 999983;
          ELSIF op = OpSub THEN
            stack[sp - 2] := a - b;
          ELSE
            stack[sp - 2] := (a * b) MOD 999983;
          END;
          sp := sp - 1;
        END;
      ELSIF op = OpNeg THEN
        IF sp >= 1 THEN
          stack[sp - 1] := 0 - stack[sp - 1];
        END;
      ELSIF op = OpJz THEN
        (* structured input: treat as a stack pop *)
        IF sp >= 1 THEN sp := sp - 1; END;
      END;
      pc := pc + 1;
    END;
    IF sp > 0 THEN
      IF sp > 32 THEN sp := 32; END;
      RETURN stack[sp - 1];
    END;
    RETURN 0;
  END RunCode;

(* --- driver ------------------------------------------------------------------ *)

PROCEDURE BuildExpr (depth: INTEGER): Expr =
  VAR
    choice: INTEGER; c: Const; l: Local; u: Unary; b: Binary; q: Cond;
  BEGIN
    IF depth <= 0 THEN
      choice := Rand (2);
    ELSE
      choice := Rand (6);
    END;
    IF choice = 0 THEN
      c := NEW (Const);
      c.value := Rand (100);
      RETURN c;
    ELSIF choice = 1 THEN
      l := NEW (Local);
      l.slot := Rand (RegCount);
      RETURN l;
    ELSIF choice = 2 THEN
      u := NEW (Unary);
      u.sub := BuildExpr (depth - 1);
      RETURN u;
    ELSIF choice = 5 THEN
      q := NEW (Cond);
      q.test := BuildExpr (depth - 1);
      q.then := BuildExpr (depth - 1);
      q.else := BuildExpr (depth - 1);
      RETURN q;
    END;
    b := NEW (Binary);
    b.op := OpAdd + Rand (3);
    b.left := BuildExpr (depth - 1);
    b.right := BuildExpr (depth - 1);
    RETURN b;
  END BuildExpr;

PROCEDURE CompileFun (f: Fun) =
  BEGIN
    f.cg := NEW (Codegen);
    f.cg.code := NEW (Code, CodeCap);
    f.cg.used := 0;
    f.cg.maxStack := 0;
    f.cg.curStack := 0;
    f.cg.labels := 0;
    f.body.gen (f.cg);
    Emit (f.cg, OpRet, 0);
    Peephole (f.cg);
    Allocate (f.cg);
    emitted := emitted + f.cg.used;
  END CompileFun;

PROCEDURE DebugNote (dbg: DebugCodegen; op: INTEGER) =
  BEGIN
    IF dbg.verbosity > 0 THEN
      IF dbg.used < Number (dbg.code) THEN
        dbg.code[dbg.used].op := op;
        dbg.code[dbg.used].arg := dbg.verbosity;
        dbg.used := dbg.used + 1;
      END;
    END;
  END DebugNote;

PROCEDURE CompileAll () =
  VAR f: Fun;
  BEGIN
    f := funs;
    WHILE f # NIL DO
      CompileFun (f);
      checksum := (checksum * 31 + RunCode (f.cg)) MOD 999983;
      checksum := (checksum + f.cg.maxStack) MOD 999983;
      f := f.next;
    END;
  END CompileAll;

BEGIN
  seed := 8191;
  emitted := 0;
  removedNops := 0;
  foldedPairs := 0;
  checksum := 0;
  FOR r := 0 TO RegCount - 1 DO
    regs[r] := r * 11;
  END;
  FOR i := 1 TO FunCount DO
    WITH f = NEW (Fun) DO
      f.body := BuildExpr (MaxDepth);
      f.next := funs;
      funs := f;
    END;
  END;
  lastFun := funs;
  CompileAll ();
  WITH dbg = NEW (DebugCodegen) DO
    dbg.code := NEW (Code, 16);
    dbg.used := 0;
    dbg.verbosity := 1;
    DebugNote (dbg, OpNop);
    DebugNote (dbg, OpRet);
    checksum := (checksum + dbg.used) MOD 999983;
  END;
  Print ("emitted=");  PrintInt (emitted);      PrintLn ();
  Print ("nops=");     PrintInt (removedNops);  PrintLn ();
  Print ("folded=");   PrintInt (foldedPairs);  PrintLn ();
  Print ("checksum="); PrintInt (checksum);     PrintLn ();
END M3cg.
|}

let workload =
  { Workload.name = "m3cg";
    description = "stack-machine code generator with peephole and allocator";
    source;
    dynamic = true }
