(* Registry of the ten benchmark programs, in the paper's Table 4/5 order. *)

let all : Workload.t list =
  [ W_format.workload; W_dformat.workload; W_write_pickle.workload;
    W_ktree.workload; W_slisp.workload; W_pp.workload; W_dom.workload;
    W_postcard.workload; W_m2tom3.workload; W_m3cg.workload ]

let dynamic = List.filter (fun (w : Workload.t) -> w.Workload.dynamic) all

let find name = List.find (fun (w : Workload.t) -> w.Workload.name = name) all
