(** Benchmark program descriptor. The registry of all ten programs lives in
    {!Suite} (the individual [W_*] modules depend on this type, so the list
    cannot live here). *)

type t = {
  name : string;
  description : string;
  source : string;
  dynamic : bool;  (** participates in the simulated-execution experiments *)
}

val source_lines : t -> int
(** Non-comment, non-blank source lines (Table 4's "Lines"). *)

val lower : t -> Ir.Cfg.program
(** Parse, check and lower a fresh copy of the program. *)
