(* "dformat" — a device-independent text formatter: styled runs of text are
   rendered through a device abstraction (an object hierarchy with dynamic
   dispatch), mirroring the second Liskov & Guttag formatter. *)

let source =
  {|
MODULE Dformat;

CONST
  RunCount = 1500;
  PageWidth = 48;

TYPE
  CharVec = REF ARRAY OF CHAR;

  (* A styled run of text. *)
  Run = OBJECT
    text: CharVec;
    len: INTEGER;
    style: INTEGER;  (* 0 plain, 1 bold, 2 underline, 3 verbatim *)
    next: Run;
  END;

  (* Output devices: a plain device prints characters; a markup device
     brackets styled runs; a counting device only measures. *)
  Device = OBJECT
    column: INTEGER;
    emitted: INTEGER;
  METHODS
    putc (c: CHAR) := PlainPutc;
    open (style: INTEGER) := PlainOpen;
    close (style: INTEGER) := PlainClose;
  END;

  MarkupDevice = Device OBJECT
  OVERRIDES
    putc := MarkupPutc;
    open := MarkupOpen;
    close := MarkupClose;
  END;

  CountingDevice = Device OBJECT
  OVERRIDES
    putc := CountPutc;
  END;

VAR
  seed: INTEGER;
  runs: Run;
  lastRun: Run;
  plain: Device;
  markup: MarkupDevice;
  counter: CountingDevice;
  checksum: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

(* --- devices -------------------------------------------------------- *)

PROCEDURE PlainPutc (self: Device; c: CHAR) =
  BEGIN
    PrintChar (c);
    self.emitted := self.emitted + 1;
    IF c = '\n' THEN
      self.column := 0;
    ELSE
      self.column := self.column + 1;
    END;
  END PlainPutc;

PROCEDURE PlainOpen (self: Device; style: INTEGER) =
  BEGIN
    self.emitted := self.emitted + style * 0;
  END PlainOpen;

PROCEDURE PlainClose (self: Device; style: INTEGER) =
  BEGIN
    self.emitted := self.emitted + style * 0;
  END PlainClose;

PROCEDURE MarkupPutc (self: Device; c: CHAR) =
  BEGIN
    PrintChar (c);
    self.emitted := self.emitted + 1;
    IF c = '\n' THEN
      self.column := 0;
    ELSE
      self.column := self.column + 1;
    END;
  END MarkupPutc;

PROCEDURE MarkupOpen (self: Device; style: INTEGER) =
  BEGIN
    IF style = 1 THEN
      PrintChar ('*');
      self.emitted := self.emitted + 1;
    ELSIF style = 2 THEN
      PrintChar ('_');
      self.emitted := self.emitted + 1;
    END;
  END MarkupOpen;

PROCEDURE MarkupClose (self: Device; style: INTEGER) =
  BEGIN
    IF style = 1 THEN
      PrintChar ('*');
      self.emitted := self.emitted + 1;
    ELSIF style = 2 THEN
      PrintChar ('_');
      self.emitted := self.emitted + 1;
    END;
  END MarkupClose;

PROCEDURE CountPutc (self: Device; c: CHAR) =
  BEGIN
    self.emitted := self.emitted + 1;
    IF c = '\n' THEN
      self.column := 0;
    ELSE
      self.column := self.column + 1;
    END;
  END CountPutc;

(* --- document ------------------------------------------------------- *)

PROCEDURE MakeRun (len: INTEGER; style: INTEGER): Run =
  VAR r: Run;
  BEGIN
    r := NEW (Run);
    r.text := NEW (CharVec, len);
    r.len := len;
    r.style := style;
    r.next := NIL;
    FOR i := 0 TO len - 1 DO
      r.text[i] := Chr (Ord ('a') + Rand (26));
    END;
    RETURN r;
  END MakeRun;

PROCEDURE BuildDocument () =
  VAR r: Run;
  BEGIN
    FOR i := 1 TO RunCount DO
      r := MakeRun (1 + Rand (8), Rand (4));
      IF runs = NIL THEN
        runs := r;
      ELSE
        lastRun.next := r;
      END;
      lastRun := r;
    END;
  END BuildDocument;

(* Render a run on a device, breaking the line when the page width would
   overflow. Verbatim runs (style 3) never break. *)
PROCEDURE RenderRun (d: Device; r: Run) =
  BEGIN
    IF (r.style # 3) AND ((d.column + r.len + 1) > PageWidth) THEN
      d.putc ('\n');
    END;
    d.open (r.style);
    FOR i := 0 TO r.len - 1 DO
      d.putc (r.text[i]);
      checksum := checksum + Ord (r.text[i]);
    END;
    d.close (r.style);
    IF r.style # 3 THEN
      d.putc (' ');
    END;
  END RenderRun;

PROCEDURE RenderAll (d: Device) =
  VAR r: Run;
  BEGIN
    r := runs;
    WHILE r # NIL DO
      RenderRun (d, r);
      r := r.next;
    END;
    d.putc ('\n');
  END RenderAll;

BEGIN
  seed := 91;
  runs := NIL;
  lastRun := NIL;
  checksum := 0;
  BuildDocument ();
  counter := NEW (CountingDevice);
  RenderAll (counter);
  Print ("measured="); PrintInt (counter.emitted); PrintLn ();
  markup := NEW (MarkupDevice);
  RenderAll (markup);
  plain := NEW (Device);
  RenderAll (plain);
  Print ("plain="); PrintInt (plain.emitted); PrintLn ();
  Print ("markup="); PrintInt (markup.emitted); PrintLn ();
  Print ("checksum="); PrintInt (checksum); PrintLn ();
END Dformat.
|}

let workload =
  { Workload.name = "dformat";
    description = "device-independent styled-text formatter";
    source;
    dynamic = true }
