(* "m2tom3" — a token-level Modula-2 to Modula-3 converter: a generated
   token stream is rewritten with keyword mapping tables, declaration
   reshaping, and an output buffer, like the paper's largest-input
   benchmark. *)

let source =
  {|
MODULE M2toM3;

CONST
  TokCount = 9000;
  KwCount = 16;
  (* token kinds *)
  KKw = 0;
  KIdent = 1;
  KNumber = 2;
  KPunct = 3;

TYPE
  IntVec = REF ARRAY OF INTEGER;

  Token = RECORD
    kind: INTEGER;
    code: INTEGER;   (* keyword index, ident seed, number, or punct code *)
  END;

  TokVec = REF ARRAY OF Token;

  (* A keyword mapping entry: Modula-2 keyword -> Modula-3 spelling, plus a
     flag for keywords that change statement structure. *)
  KwEntry = RECORD
    m2: INTEGER;       (* keyword code *)
    m3: INTEGER;       (* replacement code *)
    restructure: BOOLEAN;
  END;

  KwTable = ARRAY [0..15] OF KwEntry;

  Stats = OBJECT
    keywords: INTEGER;
    idents: INTEGER;
    numbers: INTEGER;
    puncts: INTEGER;
    restructured: INTEGER;
  END;

VAR
  seed: INTEGER;
  input: TokVec;
  output: TokVec;
  outUsed: INTEGER;
  table: KwTable;
  stats: Stats;
  checksum: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

PROCEDURE InitTable () =
  BEGIN
    FOR i := 0 TO KwCount - 1 DO
      table[i].m2 := i;
      table[i].m3 := (i * 3 + 1) MOD 64;
      table[i].restructure := (i MOD 5) = 0;
    END;
  END InitTable;

PROCEDURE GenInput () =
  VAR r: INTEGER;
  BEGIN
    input := NEW (TokVec, TokCount);
    FOR k := 0 TO TokCount - 1 DO
      r := Rand (10);
      IF r < 3 THEN
        input[k].kind := KKw;
        input[k].code := Rand (KwCount);
      ELSIF r < 7 THEN
        input[k].kind := KIdent;
        input[k].code := Rand (500);
      ELSIF r < 9 THEN
        input[k].kind := KNumber;
        input[k].code := Rand (10000);
      ELSE
        input[k].kind := KPunct;
        input[k].code := Rand (12);
      END;
    END;
  END GenInput;

PROCEDURE Emit (kind: INTEGER; code: INTEGER) =
  BEGIN
    IF outUsed < Number (output) THEN
      output[outUsed].kind := kind;
      output[outUsed].code := code;
      outUsed := outUsed + 1;
    END;
  END Emit;

(* Translate one keyword: map its spelling; restructuring keywords emit an
   extra punctuation token (Modula-3 needs more ENDs than Modula-2). *)
PROCEDURE TranslateKw (code: INTEGER) =
  VAR mapped: INTEGER;
  BEGIN
    mapped := table[code].m3;
    Emit (KKw, mapped);
    stats.keywords := stats.keywords + 1;
    IF table[code].restructure THEN
      Emit (KPunct, 11);
      stats.restructured := stats.restructured + 1;
    END;
  END TranslateKw;

(* Identifiers with reserved-looking seeds are renamed (suffix added). *)
PROCEDURE TranslateIdent (code: INTEGER) =
  BEGIN
    IF (code MOD 17) = 0 THEN
      Emit (KIdent, code + 1000);
    ELSE
      Emit (KIdent, code);
    END;
    stats.idents := stats.idents + 1;
  END TranslateIdent;

PROCEDURE Translate () =
  VAR kind: INTEGER; code: INTEGER;
  BEGIN
    output := NEW (TokVec, TokCount * 2);
    outUsed := 0;
    FOR k := 0 TO Number (input) - 1 DO
      kind := input[k].kind;
      code := input[k].code;
      IF kind = KKw THEN
        TranslateKw (code);
      ELSIF kind = KIdent THEN
        TranslateIdent (code);
      ELSIF kind = KNumber THEN
        Emit (KNumber, code);
        stats.numbers := stats.numbers + 1;
      ELSE
        Emit (KPunct, code);
        stats.puncts := stats.puncts + 1;
      END;
    END;
  END Translate;

PROCEDURE Checksum () =
  BEGIN
    FOR k := 0 TO outUsed - 1 DO
      checksum := (checksum * 31 + output[k].kind * 7 + output[k].code) MOD 999983;
    END;
  END Checksum;

BEGIN
  seed := 5150;
  checksum := 0;
  stats := NEW (Stats);
  InitTable ();
  GenInput ();
  Translate ();
  Checksum ();
  Print ("out=");          PrintInt (outUsed);            PrintLn ();
  Print ("keywords=");     PrintInt (stats.keywords);     PrintLn ();
  Print ("idents=");       PrintInt (stats.idents);       PrintLn ();
  Print ("numbers=");      PrintInt (stats.numbers);      PrintLn ();
  Print ("puncts=");       PrintInt (stats.puncts);       PrintLn ();
  Print ("restructured="); PrintInt (stats.restructured); PrintLn ();
  Print ("checksum=");     PrintInt (checksum);           PrintLn ();
END M2toM3.
|}

let workload =
  { Workload.name = "m2tom3";
    description = "token-level Modula-2 to Modula-3 source converter";
    source;
    dynamic = true }
