(* "pp" — a pretty printer: a token stream describing nested blocks and
   statements is rendered with an indentation engine (box stack, line
   buffer, width-driven breaking), like the Modula-3 pretty printer in the
   paper's suite. *)

let source =
  {|
MODULE Pp;

CONST
  TokCount = 4200;
  Width = 40;
  Indent = 2;
  TokOpen = 0;    (* open a block *)
  TokClose = 1;   (* close a block *)
  TokWord = 2;    (* an identifier-like word *)
  TokBreak = 3;   (* statement separator *)

TYPE
  IntVec = REF ARRAY OF INTEGER;
  CharVec = REF ARRAY OF CHAR;

  Token = RECORD
    kind: INTEGER;
    value: INTEGER;  (* word seed *)
  END;

  TokVec = REF ARRAY OF Token;

  Printer = OBJECT
    line: CharVec;    (* current line buffer *)
    used: INTEGER;
    depth: INTEGER;
    stack: IntVec;    (* indentation stack *)
    top: INTEGER;
    lines: INTEGER;
    chars: INTEGER;
  END;

VAR
  seed: INTEGER;
  toks: TokVec;
  printer: Printer;
  checksum: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

(* --- input generation: a structurally balanced token stream ------------- *)

PROCEDURE GenTokens () =
  VAR depth: INTEGER; k: INTEGER; r: INTEGER;
  BEGIN
    toks := NEW (TokVec, TokCount);
    depth := 0;
    k := 0;
    WHILE k < TokCount - 1 DO
      r := Rand (10);
      IF (r < 2) AND (depth < 6) THEN
        toks[k].kind := TokOpen;
        toks[k].value := 0;
        depth := depth + 1;
      ELSIF (r < 3) AND (depth > 0) THEN
        toks[k].kind := TokClose;
        toks[k].value := 0;
        depth := depth - 1;
      ELSIF r < 8 THEN
        toks[k].kind := TokWord;
        toks[k].value := 2 + Rand (8);
      ELSE
        toks[k].kind := TokBreak;
        toks[k].value := 0;
      END;
      k := k + 1;
    END;
    (* close anything left open with the final tokens *)
    WHILE (depth > 0) AND (k < TokCount) DO
      toks[k].kind := TokClose;
      toks[k].value := 0;
      depth := depth - 1;
      k := k + 1;
    END;
    WHILE k < TokCount DO
      toks[k].kind := TokBreak;
      toks[k].value := 0;
      k := k + 1;
    END;
  END GenTokens;

(* --- the engine ----------------------------------------------------------- *)

PROCEDURE NewPrinter (): Printer =
  VAR p: Printer;
  BEGIN
    p := NEW (Printer);
    p.line := NEW (CharVec, Width + 8);
    p.used := 0;
    p.depth := 0;
    p.stack := NEW (IntVec, 64);
    p.top := 0;
    p.lines := 0;
    p.chars := 0;
    RETURN p;
  END NewPrinter;

PROCEDURE Flush (p: Printer) =
  BEGIN
    FOR i := 0 TO p.used - 1 DO
      PrintChar (p.line[i]);
      checksum := checksum + Ord (p.line[i]);
    END;
    PrintLn ();
    p.chars := p.chars + p.used;
    p.lines := p.lines + 1;
    p.used := 0;
  END Flush;

PROCEDURE PutChar (p: Printer; c: CHAR) =
  BEGIN
    IF p.used >= Width THEN
      Flush (p);
      StartLine (p);
    END;
    p.line[p.used] := c;
    p.used := p.used + 1;
  END PutChar;

PROCEDURE StartLine (p: Printer) =
  VAR ind: INTEGER;
  BEGIN
    ind := p.depth * Indent;
    IF ind > Width - 8 THEN
      ind := Width - 8;
    END;
    FOR i := 1 TO ind DO
      p.line[p.used] := ' ';
      p.used := p.used + 1;
    END;
  END StartLine;

PROCEDURE PutWord (p: Printer; len: INTEGER; seedChar: INTEGER) =
  BEGIN
    IF p.used + len + 1 > Width THEN
      Flush (p);
      StartLine (p);
    END;
    FOR i := 0 TO len - 1 DO
      PutChar (p, Chr (Ord ('a') + ((seedChar + i) MOD 26)));
    END;
    PutChar (p, ' ');
  END PutWord;

PROCEDURE OpenBlock (p: Printer) =
  BEGIN
    PutChar (p, '{');
    Flush (p);
    p.stack[p.top] := p.depth;
    p.top := p.top + 1;
    p.depth := p.depth + 1;
    StartLine (p);
  END OpenBlock;

PROCEDURE CloseBlock (p: Printer) =
  BEGIN
    Flush (p);
    IF p.top > 0 THEN
      p.top := p.top - 1;
      p.depth := p.stack[p.top];
    END;
    StartLine (p);
    PutChar (p, '}');
    Flush (p);
    StartLine (p);
  END CloseBlock;

PROCEDURE Render () =
  VAR kind: INTEGER;
  BEGIN
    StartLine (printer);
    FOR k := 0 TO Number (toks) - 1 DO
      kind := toks[k].kind;
      IF kind = TokOpen THEN
        OpenBlock (printer);
      ELSIF kind = TokClose THEN
        CloseBlock (printer);
      ELSIF kind = TokWord THEN
        PutWord (printer, toks[k].value, toks[k].value * 7);
      ELSE
        Flush (printer);
        StartLine (printer);
      END;
    END;
    Flush (printer);
  END Render;

BEGIN
  seed := 1234;
  checksum := 0;
  GenTokens ();
  printer := NewPrinter ();
  Render ();
  Print ("lines=");    PrintInt (printer.lines); PrintLn ();
  Print ("chars=");    PrintInt (printer.chars); PrintLn ();
  Print ("checksum="); PrintInt (checksum);      PrintLn ();
END Pp.
|}

let workload =
  { Workload.name = "pp";
    description = "width-driven pretty printer with an indentation stack";
    source;
    dynamic = true }
