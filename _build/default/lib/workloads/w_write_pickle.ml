(* "write-pickle" — builds a subtype-rich expression AST, serializes it to a
   flat integer array (the pickle), reads it back, and checks the two trees
   evaluate identically. The cursor threading through Unpickle is a VAR
   parameter, one of MiniM3's two address-taking constructs; the AST's
   deep inheritance (Expr > Bin > Add/Mul) is exactly the shape selective
   type merging is sensitive to. *)

let source =
  {|
MODULE WritePickle;

CONST
  TreeCount = 700;
  PickleCap = 2048;
  TagNum = 1;
  TagVar = 2;
  TagNeg = 3;
  TagAdd = 4;
  TagMul = 5;

TYPE
  IntVec = REF ARRAY OF INTEGER;

  Expr = OBJECT
  METHODS
    eval (): INTEGER := EvalZero;
    pickle (buf: IntVec; VAR cursor: INTEGER) := PickleZero;
  END;

  Num = Expr OBJECT
    value: INTEGER;
  OVERRIDES
    eval := EvalNum;
    pickle := PickleNum;
  END;

  VarRef = Expr OBJECT
    slot: INTEGER;
  OVERRIDES
    eval := EvalVar;
    pickle := PickleVar;
  END;

  Neg = Expr OBJECT
    sub: Expr;
  OVERRIDES
    eval := EvalNeg;
    pickle := PickleNeg;
  END;

  Bin = Expr OBJECT
    left, right: Expr;
  END;

  Add = Bin OBJECT
  OVERRIDES
    eval := EvalAdd;
    pickle := PickleAdd;
  END;

  Mul = Bin OBJECT
  OVERRIDES
    eval := EvalMul;
    pickle := PickleMul;
  END;

VAR
  seed: INTEGER;
  env: ARRAY [0..7] OF INTEGER;
  total: INTEGER;
  roundtrip: INTEGER;
  pickleWords: INTEGER;

PROCEDURE Rand (range: INTEGER): INTEGER =
  BEGIN
    seed := (seed * 25173 + 13849) MOD 65536;
    RETURN seed MOD range;
  END Rand;

(* --- evaluation ------------------------------------------------------ *)

PROCEDURE EvalZero (self: Expr): INTEGER =
  BEGIN
    RETURN 0;
  END EvalZero;

PROCEDURE EvalNum (self: Num): INTEGER =
  BEGIN
    RETURN self.value;
  END EvalNum;

PROCEDURE EvalVar (self: VarRef): INTEGER =
  BEGIN
    RETURN env[self.slot MOD 8];
  END EvalVar;

PROCEDURE EvalNeg (self: Neg): INTEGER =
  BEGIN
    RETURN 0 - self.sub.eval ();
  END EvalNeg;

PROCEDURE EvalAdd (self: Add): INTEGER =
  BEGIN
    RETURN self.left.eval () + self.right.eval ();
  END EvalAdd;

PROCEDURE EvalMul (self: Mul): INTEGER =
  BEGIN
    RETURN (self.left.eval () * self.right.eval ()) MOD 65521;
  END EvalMul;

(* --- pickling --------------------------------------------------------- *)

PROCEDURE Put (buf: IntVec; VAR cursor: INTEGER; word: INTEGER) =
  BEGIN
    IF cursor < Number (buf) THEN
      buf[cursor] := word;
    END;
    cursor := cursor + 1;
  END Put;

PROCEDURE PickleZero (self: Expr; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, 0);
  END PickleZero;

PROCEDURE PickleNum (self: Num; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, TagNum);
    Put (buf, cursor, self.value);
  END PickleNum;

PROCEDURE PickleVar (self: VarRef; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, TagVar);
    Put (buf, cursor, self.slot);
  END PickleVar;

PROCEDURE PickleNeg (self: Neg; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, TagNeg);
    self.sub.pickle (buf, cursor);
  END PickleNeg;

PROCEDURE PickleAdd (self: Add; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, TagAdd);
    self.left.pickle (buf, cursor);
    self.right.pickle (buf, cursor);
  END PickleAdd;

PROCEDURE PickleMul (self: Mul; buf: IntVec; VAR cursor: INTEGER) =
  BEGIN
    Put (buf, cursor, TagMul);
    self.left.pickle (buf, cursor);
    self.right.pickle (buf, cursor);
  END PickleMul;

(* --- unpickling ------------------------------------------------------- *)

PROCEDURE Get (buf: IntVec; VAR cursor: INTEGER): INTEGER =
  VAR w: INTEGER;
  BEGIN
    IF cursor < Number (buf) THEN
      w := buf[cursor];
    ELSE
      w := 0;
    END;
    cursor := cursor + 1;
    RETURN w;
  END Get;

PROCEDURE Unpickle (buf: IntVec; VAR cursor: INTEGER): Expr =
  VAR tag: INTEGER; num: Num; vr: VarRef; neg: Neg; add: Add; mul: Mul;
  BEGIN
    tag := Get (buf, cursor);
    IF tag = TagNum THEN
      num := NEW (Num);
      num.value := Get (buf, cursor);
      RETURN num;
    ELSIF tag = TagVar THEN
      vr := NEW (VarRef);
      vr.slot := Get (buf, cursor);
      RETURN vr;
    ELSIF tag = TagNeg THEN
      neg := NEW (Neg);
      neg.sub := Unpickle (buf, cursor);
      RETURN neg;
    ELSIF tag = TagAdd THEN
      add := NEW (Add);
      add.left := Unpickle (buf, cursor);
      add.right := Unpickle (buf, cursor);
      RETURN add;
    ELSIF tag = TagMul THEN
      mul := NEW (Mul);
      mul.left := Unpickle (buf, cursor);
      mul.right := Unpickle (buf, cursor);
      RETURN mul;
    END;
    RETURN NEW (Expr);
  END Unpickle;

(* --- tree construction -------------------------------------------------- *)

PROCEDURE Build (depth: INTEGER): Expr =
  VAR choice: INTEGER; num: Num; vr: VarRef; neg: Neg; add: Add; mul: Mul;
  BEGIN
    IF depth <= 0 THEN
      choice := Rand (2);
    ELSE
      choice := Rand (5);
    END;
    IF choice = 0 THEN
      num := NEW (Num);
      num.value := Rand (1000);
      RETURN num;
    ELSIF choice = 1 THEN
      vr := NEW (VarRef);
      vr.slot := Rand (8);
      RETURN vr;
    ELSIF choice = 2 THEN
      neg := NEW (Neg);
      neg.sub := Build (depth - 1);
      RETURN neg;
    ELSIF choice = 3 THEN
      add := NEW (Add);
      add.left := Build (depth - 1);
      add.right := Build (depth - 1);
      RETURN add;
    END;
    mul := NEW (Mul);
    mul.left := Build (depth - 1);
    mul.right := Build (depth - 1);
    RETURN mul;
  END Build;

PROCEDURE RunOne () =
  VAR
    tree: Expr; back: Expr; buf: IntVec;
    cursor: INTEGER; readCursor: INTEGER; a: INTEGER; b: INTEGER;
  BEGIN
    tree := Build (5);
    buf := NEW (IntVec, PickleCap);
    cursor := 0;
    tree.pickle (buf, cursor);
    pickleWords := pickleWords + cursor;
    readCursor := 0;
    back := Unpickle (buf, readCursor);
    a := tree.eval ();
    b := back.eval ();
    total := total + a;
    roundtrip := roundtrip + b;
  END RunOne;

BEGIN
  seed := 20507;
  total := 0;
  roundtrip := 0;
  pickleWords := 0;
  FOR i := 0 TO 7 DO
    env[i] := i * 37;
  END;
  FOR t := 1 TO TreeCount DO
    RunOne ();
  END;
  Print ("total=");     PrintInt (total);      PrintLn ();
  Print ("roundtrip="); PrintInt (roundtrip);  PrintLn ();
  Print ("words=");     PrintInt (pickleWords); PrintLn ();
  IF total = roundtrip THEN
    Print ("pickle OK");
  ELSE
    Print ("pickle MISMATCH");
  END;
  PrintLn ();
END WritePickle.
|}

let workload =
  { Workload.name = "write_pickle";
    description = "pickles and unpickles a subtype-rich expression AST";
    source;
    dynamic = true }
