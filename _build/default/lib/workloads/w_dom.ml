(* "dom" — a distributed-object substrate (after Nayeri et al.'s system for
   building distributed applications): object descriptors, proxies,
   dispatchers and marshalling buffers. Interactive in the paper, so it
   contributes only to the static metrics; the main body is a minimal
   self-check. *)

let source =
  {|
MODULE Dom;

CONST
  MaxArgs = 4;

TYPE
  IntVec = REF ARRAY OF INTEGER;

  (* Marshalled request buffer. *)
  Buffer = OBJECT
    words: IntVec;
    used: INTEGER;
    next: Buffer;  (* free list *)
  END;

  (* Remote object descriptor. *)
  ObjDesc = OBJECT
    oid: INTEGER;
    generation: INTEGER;
  METHODS
    invoke (method: INTEGER; args: Buffer): INTEGER := InvokeLocal;
  END;

  Proxy = ObjDesc OBJECT
    hop: INTEGER;  (* forwarding distance *)
  OVERRIDES
    invoke := InvokeProxy;
  END;

  Replica = ObjDesc OBJECT
    copies: INTEGER;
  OVERRIDES
    invoke := InvokeReplica;
  END;

  (* Dispatch table entry. *)
  Binding = RECORD
    method: INTEGER;
    cost: INTEGER;
  END;

  Dispatcher = OBJECT
    table: ARRAY [0..7] OF Binding;
    served: INTEGER;
    target: ObjDesc;
    next: Dispatcher;
  END;

  BufferPool = OBJECT
    free: Buffer;
    created: INTEGER;
    reused: INTEGER;
  END;

VAR
  pool: BufferPool;
  dispatchers: Dispatcher;
  invocations: INTEGER;

(* --- buffer pool -------------------------------------------------------- *)

PROCEDURE GetBuffer (p: BufferPool): Buffer =
  VAR b: Buffer;
  BEGIN
    IF p.free # NIL THEN
      b := p.free;
      p.free := b.next;
      b.used := 0;
      p.reused := p.reused + 1;
      RETURN b;
    END;
    b := NEW (Buffer);
    b.words := NEW (IntVec, MaxArgs);
    b.used := 0;
    b.next := NIL;
    p.created := p.created + 1;
    RETURN b;
  END GetBuffer;

PROCEDURE PutBuffer (p: BufferPool; b: Buffer) =
  BEGIN
    b.next := p.free;
    p.free := b;
  END PutBuffer;

PROCEDURE Marshal (b: Buffer; word: INTEGER) =
  BEGIN
    IF b.used < Number (b.words) THEN
      b.words[b.used] := word;
      b.used := b.used + 1;
    END;
  END Marshal;

(* --- invocation --------------------------------------------------------- *)

PROCEDURE InvokeLocal (self: ObjDesc; method: INTEGER; args: Buffer): INTEGER =
  VAR acc: INTEGER;
  BEGIN
    acc := self.oid * 7 + method;
    FOR i := 0 TO args.used - 1 DO
      acc := acc + args.words[i];
    END;
    invocations := invocations + 1;
    RETURN acc;
  END InvokeLocal;

PROCEDURE InvokeProxy (self: Proxy; method: INTEGER; args: Buffer): INTEGER =
  BEGIN
    (* a proxy charges a forwarding cost, then behaves like the local case *)
    RETURN InvokeLocal (self, method, args) + self.hop;
  END InvokeProxy;

PROCEDURE InvokeReplica (self: Replica; method: INTEGER; args: Buffer): INTEGER =
  BEGIN
    RETURN InvokeLocal (self, method, args) * self.copies;
  END InvokeReplica;

(* --- dispatcher registry -------------------------------------------------- *)

PROCEDURE Register (target: ObjDesc): Dispatcher =
  VAR d: Dispatcher;
  BEGIN
    d := NEW (Dispatcher);
    d.target := target;
    d.served := 0;
    FOR i := 0 TO 7 DO
      d.table[i].method := i;
      d.table[i].cost := i * 3;
    END;
    d.next := dispatchers;
    dispatchers := d;
    RETURN d;
  END Register;

PROCEDURE Dispatch (d: Dispatcher; method: INTEGER; args: Buffer): INTEGER =
  VAR cost: INTEGER;
  BEGIN
    cost := d.table[method MOD 8].cost;
    d.served := d.served + 1;
    RETURN d.target.invoke (method, args) + cost;
  END Dispatch;

BEGIN
  pool := NEW (BufferPool);
  invocations := 0;
  WITH local = NEW (ObjDesc), proxy = NEW (Proxy), rep = NEW (Replica) DO
    local.oid := 1;
    proxy.oid := 2;
    proxy.hop := 5;
    rep.oid := 3;
    rep.copies := 2;
    WITH d1 = Register (local), d2 = Register (proxy), d3 = Register (rep) DO
      WITH b = GetBuffer (pool) DO
        Marshal (b, 10);
        Marshal (b, 20);
        PrintInt (Dispatch (d1, 1, b)); PrintChar (' ');
        PrintInt (Dispatch (d2, 2, b)); PrintChar (' ');
        PrintInt (Dispatch (d3, 3, b)); PrintLn ();
        PutBuffer (pool, b);
      END;
    END;
  END;
  PrintInt (invocations); PrintLn ();
END Dom.
|}

let workload =
  { Workload.name = "dom";
    description = "distributed-object substrate (static metrics only)";
    source;
    dynamic = false }
