(* "postcard" — a mail handling core (the paper's graphical mail reader,
   without the GUI): messages, folders, filters and a summary view.
   Interactive in the paper, so it contributes only to the static
   metrics; the main body is a minimal self-check. *)

let source =
  {|
MODULE Postcard;

TYPE
  CharVec = REF ARRAY OF CHAR;

  Message = OBJECT
    id: INTEGER;
    sender: INTEGER;
    size: INTEGER;
    flags: INTEGER;  (* bit 0 read, bit 1 flagged *)
    subject: CharVec;
    next: Message;
  END;

  Folder = OBJECT
    name: INTEGER;
    head: Message;
    count: INTEGER;
    unread: INTEGER;
    next: Folder;
  END;

  (* Filters select messages; subclasses refine the predicate. *)
  Filter = OBJECT
    matched: INTEGER;
  METHODS
    matches (m: Message): BOOLEAN := MatchAll;
  END;

  SenderFilter = Filter OBJECT
    wanted: INTEGER;
  OVERRIDES
    matches := MatchSender;
  END;

  UnreadFilter = Filter OBJECT
  OVERRIDES
    matches := MatchUnread;
  END;

  (* Used only through SizeFilter-typed paths — never assigned into a
     Filter-typed location, so selective type merging can prove its
     [matched] field apart from the generic filters' (the paper's
     postcard is where SMFieldTypeRefs beats FieldTypeDecl). *)
  SizeFilter = Filter OBJECT
    threshold: INTEGER;
  END;

  Mailbox = OBJECT
    folders: Folder;
    total: INTEGER;
  END;

VAR
  box: Mailbox;
  nextId: INTEGER;

PROCEDURE MatchAll (self: Filter; m: Message): BOOLEAN =
  BEGIN
    RETURN m.id >= 0;
  END MatchAll;

PROCEDURE MatchSender (self: SenderFilter; m: Message): BOOLEAN =
  BEGIN
    RETURN m.sender = self.wanted;
  END MatchSender;

PROCEDURE MatchUnread (self: UnreadFilter; m: Message): BOOLEAN =
  BEGIN
    RETURN (m.flags MOD 2) = 0;
  END MatchUnread;

PROCEDURE NewFolder (name: INTEGER): Folder =
  VAR f: Folder;
  BEGIN
    f := NEW (Folder);
    f.name := name;
    f.head := NIL;
    f.count := 0;
    f.unread := 0;
    f.next := box.folders;
    box.folders := f;
    RETURN f;
  END NewFolder;

PROCEDURE Deliver (f: Folder; sender: INTEGER; size: INTEGER): Message =
  VAR m: Message;
  BEGIN
    m := NEW (Message);
    m.id := nextId;
    nextId := nextId + 1;
    m.sender := sender;
    m.size := size;
    m.flags := 0;
    m.subject := NEW (CharVec, 8);
    FOR i := 0 TO 7 DO
      m.subject[i] := Chr (Ord ('a') + ((sender + i) MOD 26));
    END;
    m.next := f.head;
    f.head := m;
    f.count := f.count + 1;
    f.unread := f.unread + 1;
    box.total := box.total + 1;
    RETURN m;
  END Deliver;

PROCEDURE MarkRead (f: Folder; m: Message) =
  BEGIN
    IF (m.flags MOD 2) = 0 THEN
      m.flags := m.flags + 1;
      f.unread := f.unread - 1;
    END;
  END MarkRead;

PROCEDURE RunFilter (f: Folder; filt: Filter): INTEGER =
  VAR m: Message; hits: INTEGER;
  BEGIN
    hits := 0;
    m := f.head;
    WHILE m # NIL DO
      IF filt.matches (m) THEN
        hits := hits + 1;
        filt.matched := filt.matched + 1;
      END;
      m := m.next;
    END;
    RETURN hits;
  END RunFilter;

PROCEDURE CheckSize (sf: SizeFilter; m: Message): BOOLEAN =
  BEGIN
    IF m.size > sf.threshold THEN
      sf.matched := sf.matched + 1;
      RETURN TRUE;
    END;
    RETURN FALSE;
  END CheckSize;

PROCEDURE Summarize (): INTEGER =
  VAR f: Folder; acc: INTEGER;
  BEGIN
    acc := 0;
    f := box.folders;
    WHILE f # NIL DO
      acc := acc + f.count * 100 + f.unread;
      f := f.next;
    END;
    RETURN acc;
  END Summarize;

BEGIN
  box := NEW (Mailbox);
  box.total := 0;
  nextId := 0;
  WITH inbox = NewFolder (1), archive = NewFolder (2) DO
    WITH m1 = Deliver (inbox, 7, 120), m2 = Deliver (inbox, 9, 80) DO
      MarkRead (inbox, m1);
      IF m2.size > 100 THEN
        MarkRead (inbox, m2);
      END;
    END;
    WITH m3 = Deliver (archive, 7, 300) DO
      MarkRead (archive, m3);
    END;
    WITH bySender = NEW (SenderFilter), unread = NEW (UnreadFilter) DO
      bySender.wanted := 7;
      PrintInt (RunFilter (inbox, bySender)); PrintChar (' ');
      PrintInt (RunFilter (archive, bySender)); PrintChar (' ');
      PrintInt (RunFilter (inbox, unread)); PrintChar (' ');
      PrintInt (bySender.matched + unread.matched); PrintLn ();
    END;
    WITH big = NEW (SizeFilter) DO
      big.threshold := 100;
      WITH m4 = Deliver (inbox, 3, 250) DO
        IF CheckSize (big, m4) THEN
          MarkRead (inbox, m4);
        END;
      END;
      PrintInt (big.matched); PrintLn ();
    END;
  END;
  PrintInt (Summarize ()); PrintLn ();
END Postcard.
|}

let workload =
  { Workload.name = "postcard";
    description = "mail folders, messages and filters (static metrics only)";
    source;
    dynamic = false }
