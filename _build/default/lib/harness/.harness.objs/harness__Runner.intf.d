lib/harness/runner.mli: Ir Opt Sim Tbaa Workloads
