lib/harness/experiments.ml: Format List Opt Printf Runner Sim Suite Support Table Tbaa Workload Workloads
