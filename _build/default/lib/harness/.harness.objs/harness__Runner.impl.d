lib/harness/runner.ml: Hashtbl List Opt Option Printf Sim String Tbaa Workload Workloads
