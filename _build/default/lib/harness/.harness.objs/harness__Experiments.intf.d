lib/harness/experiments.mli: Format Sim Tbaa Workload Workloads
