(** One regeneration function per table and figure of the paper's
    evaluation (plus the ablations DESIGN.md calls out). Each returns the
    structured rows and can render itself as an ASCII table; [run_all]
    prints everything in paper order. *)

open Workloads

(** Table 4: benchmark descriptions and dynamic load mix. *)
module Table4 : sig
  type row = {
    name : string;
    lines : int;
    instructions : int option;  (* None for the interactive programs *)
    heap_load_pct : float option;
    other_load_pct : float option;
  }

  val compute : unit -> row list
  val render : unit -> string
end

(** Table 5: static local/global alias pairs under the three analyses. *)
module Table5 : sig
  type row = {
    name : string;
    references : int;
    td : Tbaa.Alias_pairs.counts;
    ftd : Tbaa.Alias_pairs.counts;
    sm : Tbaa.Alias_pairs.counts;
  }

  val compute : unit -> row list
  val render : unit -> string
end

(** Table 6: redundant loads removed statically by RLE per analysis. *)
module Table6 : sig
  type row = { name : string; td : int; ftd : int; sm : int }

  val compute : unit -> row list
  val render : unit -> string
end

(** Figure 8: simulated running time (percent of base) per analysis. *)
module Figure8 : sig
  type row = { name : string; td : float; ftd : float; sm : float }

  val compute : unit -> row list
  val render : unit -> string
end

(** Figure 9: dynamically redundant heap loads, before and after TBAA+RLE,
    as fractions of the original heap loads. *)
module Figure9 : sig
  type row = { name : string; before : float; after : float }

  val compute : unit -> row list
  val render : unit -> string
end

(** Figure 10: classification of the redundancy remaining after TBAA+RLE,
    as fractions of the original heap loads. *)
module Figure10 : sig
  type row = {
    name : string;
    fractions : (Sim.Classify.category * float) list;
  }

  val compute : unit -> row list
  val render : unit -> string
end

(** Figure 11: cumulative impact — RLE, Minv+Inlining, and both. *)
module Figure11 : sig
  type row = { name : string; rle : float; minv : float; both : float }

  val compute : unit -> row list
  val render : unit -> string
end

(** Figure 12: RLE under the closed- vs open-world assumption. *)
module Figure12 : sig
  type row = { name : string; closed : float; opened : float }

  val compute : unit -> row list
  val render : unit -> string
end

(** ABL1: grouped vs per-type selective merging (footnote 2). *)
module Ablation_merge : sig
  type row = {
    name : string;
    grouped_local : int;
    per_type_local : int;
    grouped_global : int;
    per_type_global : int;
  }

  val compute : unit -> row list
  val render : unit -> string
end

(** ABL3: RLE with and without interprocedural mod-ref. *)
module Ablation_modref : sig
  type row = { name : string; with_modref : int; without_modref : int }

  val compute : unit -> row list
  val render : unit -> string
end

(** Extension (paper §3.7/§6 future work): PRE + copy propagation applied
    after TBAA+RLE — how much residual redundancy they recover and at what
    running-time cost. *)
module Extension_future_work : sig
  type row = {
    name : string;
    rle_after : float;
    ext_after : float;
    rle_cycles : int;
    ext_cycles : int;
  }

  val compute : unit -> row list
  val render : unit -> string
end

val dynamic_seven : Workload.t list
(** The seven programs of Table 6 / Figures 8, 11, 12. *)

val dynamic_eight : Workload.t list
(** The eight programs of Figures 9–10 (adds pp). *)

val run_all : Format.formatter -> unit
(** Render every table and figure, in paper order. *)
