(** Shared (memoized) execution of benchmark configurations.

    A configuration describes what the whole-program optimizer did before
    the simulated run. Every configuration — including the base — finishes
    with the block-local trivial-alias load CSE ({!Opt.Local_cse}), because
    the paper normalizes against GCC, which already eliminates redundant
    loads with no intervening memory writes. *)

type config = {
  rle : Opt.Pipeline.oracle_kind option;  (* None = no RLE *)
  minv : bool;  (* method resolution + inlining (§3.7) *)
  world : Tbaa.World.t;
  pre : bool;  (* + partial redundancy elimination (extension) *)
  copyprop : bool;  (* + copy propagation and a second RLE (extension) *)
}

val base : config
val rle_with : Opt.Pipeline.oracle_kind -> config
val config_name : config -> string

val prepare : Workloads.Workload.t -> config -> Ir.Cfg.program
(** Lower a fresh copy and apply the configuration's passes (uncached). *)

val run : Workloads.Workload.t -> config -> Sim.Interp.outcome
(** Memoized simulated execution. *)

val percent_of_base : Workloads.Workload.t -> config -> float
(** Simulated running time as percent of the base configuration (the
    paper's Figures 8, 11, 12 y-axis). *)

val check_outputs_agree : Workloads.Workload.t -> config list -> unit
(** Raises [Failure] if any configuration changes the program's output —
    the harness-level semantics check. *)
