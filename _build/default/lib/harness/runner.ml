open Workloads

type config = {
  rle : Opt.Pipeline.oracle_kind option;
  minv : bool;
  world : Tbaa.World.t;
  pre : bool;
  copyprop : bool;
}

let base =
  { rle = None; minv = false; world = Tbaa.World.Closed; pre = false;
    copyprop = false }

let rle_with kind = { base with rle = Some kind }

let config_name c =
  let rle =
    match c.rle with
    | None -> "base"
    | Some k -> "rle:" ^ Opt.Pipeline.oracle_name k
  in
  let minv = if c.minv then "+minv" else "" in
  let world =
    match c.world with Tbaa.World.Closed -> "" | Tbaa.World.Open -> "+open"
  in
  let ext =
    (if c.pre then "+pre" else "") ^ if c.copyprop then "+cp" else ""
  in
  rle ^ minv ^ world ^ ext

let prepare w config =
  let program = Workload.lower w in
  ignore
    (Opt.Pipeline.run program
       { Opt.Pipeline.oracle_kind =
           Option.value config.rle ~default:Opt.Pipeline.Osm_field_type_refs;
         world = config.world;
         devirt_inline = config.minv;
         rle = config.rle <> None;
         pre = config.pre;
         copyprop = config.copyprop });
  ignore (Opt.Local_cse.run program);
  program

let memo : (string * string, Sim.Interp.outcome) Hashtbl.t = Hashtbl.create 64

let run w config =
  let key = (w.Workload.name, config_name config) in
  match Hashtbl.find_opt memo key with
  | Some outcome -> outcome
  | None ->
    let outcome = Sim.Interp.run (prepare w config) in
    Hashtbl.replace memo key outcome;
    outcome

let percent_of_base w config =
  let b = run w base in
  let c = run w config in
  100.0 *. float_of_int c.Sim.Interp.cycles /. float_of_int b.Sim.Interp.cycles

let check_outputs_agree w configs =
  let b = run w base in
  List.iter
    (fun c ->
      let o = run w c in
      if not (String.equal o.Sim.Interp.output b.Sim.Interp.output) then
        failwith
          (Printf.sprintf "%s: configuration %s changed the program output"
             w.Workload.name (config_name c)))
    configs
