(* Lexer, parser, and typechecker tests, including the paper's Figure 1
   type hierarchy and Figure 3 assignment example. *)

open Support
open Minim3

let tokens_of s = List.map fst (Lexer.tokenize ~file:"t" s)

let token = Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.to_string t)) Token.equal

let test_lex_basics () =
  Alcotest.(check (list token))
    "operators"
    [ Token.IDENT "a"; Token.ASSIGN; Token.IDENT "b"; Token.CARET; Token.DOT;
      Token.IDENT "f"; Token.LBRACKET; Token.INT 3; Token.RBRACKET; Token.SEMI;
      Token.EOF ]
    (tokens_of "a := b^.f[3];")

let test_lex_keywords_vs_idents () =
  Alcotest.(check (list token))
    "keywords"
    [ Token.WHILE; Token.IDENT "WhileLoop"; Token.DO; Token.END; Token.EOF ]
    (tokens_of "WHILE WhileLoop DO END")

let test_lex_comments_nest () =
  Alcotest.(check (list token))
    "nested comments"
    [ Token.INT 1; Token.INT 2; Token.EOF ]
    (tokens_of "1 (* outer (* inner *) still out *) 2")

let test_lex_char_and_string () =
  Alcotest.(check (list token))
    "literals"
    [ Token.CHARLIT 'x'; Token.CHARLIT '\n'; Token.STRING "hi\tthere"; Token.EOF ]
    (tokens_of "'x' '\\n' \"hi\\tthere\"")

let test_lex_dotdot () =
  Alcotest.(check (list token))
    "ranges"
    [ Token.LBRACKET; Token.INT 0; Token.DOTDOT; Token.INT 9; Token.RBRACKET;
      Token.EOF ]
    (tokens_of "[0..9]")

let test_lex_error () =
  match Lexer.tokenize ~file:"t" "a ? b" with
  | exception Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a lex error"

(* --- parser --------------------------------------------------------- *)

let figure1 =
  {|
MODULE Figure1;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT END;
  S2 = T OBJECT END;
  S3 = T OBJECT END;
VAR
  t: T;
  s: S1;
  u: S2;
BEGIN
END Figure1.
|}

let figure3 =
  {|
MODULE Figure3;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT END;
  S2 = T OBJECT END;
  S3 = T OBJECT END;
VAR
  s1: S1;
  s2: S2;
  s3: S3;
  t: T;
BEGIN
  s1 := NEW (S1);
  s2 := NEW (S2);
  s3 := NEW (S3);
  t := s1; (* Statement 1 *)
  t := s2; (* Statement 2 *)
END Figure3.
|}

let test_parse_figure1 () =
  let m = Parser.parse_module ~file:"fig1" figure1 in
  Alcotest.(check string) "module name" "Figure1" (Ident.name m.Ast.mod_name);
  Alcotest.(check int) "decl count" 7 (List.length m.Ast.mod_decls)

let test_parse_expr_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  match e.Ast.e_desc with
  | Ast.Binop (Ast.Add, _, { Ast.e_desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "expected 1 + (2 * 3)"

let test_parse_access_path () =
  (* The paper's canonical AP shape: a^.b[i].c *)
  let e = Parser.parse_expr_string "a^.b[i].c" in
  match e.Ast.e_desc with
  | Ast.Field ({ Ast.e_desc = Ast.Index ({ Ast.e_desc = Ast.Field ({ Ast.e_desc = Ast.Deref _; _ }, _); _ }, _); _ }, c)
    when Ident.name c = "c" -> ()
  | _ -> Alcotest.fail "unexpected access path shape"

let test_parse_relations_nonassoc () =
  (* Relations are non-associative, as in Modula-3: chaining needs parens. *)
  (match Parser.parse_expr_string "a < b = TRUE" with
  | exception Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected chained relation to be rejected");
  match (Parser.parse_expr_string "(a < b) = TRUE").Ast.e_desc with
  | Ast.Binop (Ast.Eq, _, _) -> ()
  | _ -> Alcotest.fail "expected = at top"

let test_parse_object_with_methods () =
  let src =
    {|
MODULE M;
TYPE
  Shape = OBJECT
    area: INTEGER;
  METHODS
    grow (by: INTEGER): INTEGER := GrowShape;
  END;
  Circle = Shape OBJECT
  OVERRIDES
    grow := GrowCircle;
  END;
PROCEDURE GrowShape (self: Shape; by: INTEGER): INTEGER =
  BEGIN
    self.area := self.area + by;
    RETURN self.area;
  END GrowShape;
PROCEDURE GrowCircle (self: Shape; by: INTEGER): INTEGER =
  BEGIN
    self.area := self.area + 2 * by;
    RETURN self.area;
  END GrowCircle;
VAR c: Circle;
BEGIN
  c := NEW (Circle);
  PrintInt (c.grow (3));
END M.
|}
  in
  let m = Parser.parse_module ~file:"m" src in
  Alcotest.(check int) "decls" 5 (List.length m.Ast.mod_decls)

let test_parse_decl_order_preserved () =
  (* Sections must come out in declaration order — global initializers run
     in that order. *)
  let m =
    Parser.parse_module ~file:"ord"
      {|
MODULE M;
TYPE A = INTEGER; B = INTEGER;
VAR x: INTEGER := 1; y: INTEGER := 2;
CONST C = 3; D = 4;
BEGIN
END M.
|}
  in
  let names =
    List.map
      (function
        | Ast.Dtype (n, _, _) -> Ident.name n
        | Ast.Dconst c -> Ident.name c.Ast.c_name
        | Ast.Dvar v -> Ident.name v.Ast.v_name
        | Ast.Dproc p -> Ident.name p.Ast.pr_name)
      m.Ast.mod_decls
  in
  Alcotest.(check (list string)) "order" [ "A"; "B"; "x"; "y"; "C"; "D" ] names

let test_parse_error_location () =
  match Parser.parse_module ~file:"bad" "MODULE X;\nVAR a: ; BEGIN END X." with
  | exception Diag.Compile_error d ->
    Alcotest.(check int) "error on line 2" 2 d.Diag.loc.Loc.line
  | _ -> Alcotest.fail "expected parse error"

(* --- typechecker ---------------------------------------------------- *)

let check src = Typecheck.check_string ~file:"test" src

let expect_error ?(substring = "") src =
  match check src with
  | exception Diag.Compile_error d ->
    if substring <> "" then
      let msg = d.Diag.message in
      let contains =
        let needle = substring and hay = msg in
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      if not contains then
        Alcotest.fail
          (Printf.sprintf "error %S does not mention %S" msg substring)
  | _ -> Alcotest.fail "expected a type error"

let test_check_figure1 () =
  let p = check figure1 in
  let env = p.Tast.tenv in
  let tid_of name = List.assoc (Ident.intern name) p.Tast.type_names in
  let t = tid_of "T" and s1 = tid_of "S1" and s2 = tid_of "S2" in
  Alcotest.(check bool) "S1 <: T" true (Types.subtype env s1 t);
  Alcotest.(check bool) "S2 <: T" true (Types.subtype env s2 t);
  Alcotest.(check bool) "not S1 <: S2" false (Types.subtype env s1 s2);
  Alcotest.(check bool) "not T <: S1" false (Types.subtype env t s1);
  Alcotest.(check bool) "T <: ROOT" true (Types.subtype env t Types.tid_root);
  let subs = Types.subtypes env t in
  Alcotest.(check bool) "Subtypes(T) contains S1, S2, S3, T" true
    (List.length (List.filter (fun u -> Types.is_object env u) subs) = 4)

let test_check_figure3 () =
  let p = check figure3 in
  let main = Option.get (Tast.find_proc p Tast.main_ident) in
  Alcotest.(check int) "five statements" 5 (List.length main.Tast.p_body)

let test_check_subtype_assign () =
  (* t := s1 legal; s1 := t illegal (downcast) *)
  expect_error ~substring:"cannot assign"
    {|
MODULE M;
TYPE T = OBJECT END; S = T OBJECT END;
VAR t: T; s: S;
BEGIN
  t := s;
  s := t;
END M.
|}

let test_check_nil () =
  let p =
    check
      {|
MODULE M;
TYPE T = OBJECT END; P = REF INTEGER;
VAR t: T; p: P;
BEGIN
  t := NIL;
  p := NIL;
END M.
|}
  in
  ignore p

let test_check_var_param_exact_type () =
  expect_error ~substring:"VAR argument"
    {|
MODULE M;
TYPE T = OBJECT END; S = T OBJECT END;
PROCEDURE F (VAR x: T) = BEGIN END F;
VAR s: S;
BEGIN
  F (s);
END M.
|}

let test_check_ref_record_sugar () =
  (* p.f on a REF RECORD desugars to p^.f *)
  let p =
    check
      {|
MODULE M;
TYPE R = RECORD x: INTEGER; END; P = REF R;
VAR p: P;
BEGIN
  p := NEW (P);
  p.x := 3;
  PrintInt (p.x + p^.x);
END M.
|}
  in
  let main = Option.get (Tast.find_proc p Tast.main_ident) in
  match (List.nth main.Tast.p_body 1).Tast.s_desc with
  | Tast.Sassign ({ Tast.desc = Tast.Efield ({ Tast.desc = Tast.Ederef _; _ }, _); _ }, _) -> ()
  | _ -> Alcotest.fail "expected desugared deref+field"

let test_check_open_array () =
  let p =
    check
      {|
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V; n: INTEGER;
BEGIN
  v := NEW (V, 10);
  v[0] := 42;
  n := Number (v);
  PrintInt (v[0] + n);
END M.
|}
  in
  ignore p

let test_check_fixed_array_bounds_decl () =
  expect_error
    {|
MODULE M;
TYPE A = ARRAY [3..9] OF INTEGER;
BEGIN
END M.
|}

let test_check_method_dispatch () =
  let p =
    check
      {|
MODULE M;
TYPE
  Node = OBJECT val: INTEGER; METHODS eval (): INTEGER := EvalNode; END;
  Neg = Node OBJECT OVERRIDES eval := EvalNeg; END;
PROCEDURE EvalNode (self: Node): INTEGER = BEGIN RETURN self.val; END EvalNode;
PROCEDURE EvalNeg (self: Node): INTEGER = BEGIN RETURN 0 - self.val; END EvalNeg;
VAR n: Node;
BEGIN
  n := NEW (Neg);
  n.val := 5;
  PrintInt (n.eval ());
END M.
|}
  in
  let env = p.Tast.tenv in
  let neg = List.assoc (Ident.intern "Neg") p.Tast.type_names in
  let node = List.assoc (Ident.intern "Node") p.Tast.type_names in
  Alcotest.(check (option string))
    "Neg's eval impl" (Some "EvalNeg")
    (Option.map Ident.name (Types.method_impl env neg (Ident.intern "eval")));
  Alcotest.(check (option string))
    "Node's eval impl" (Some "EvalNode")
    (Option.map Ident.name (Types.method_impl env node (Ident.intern "eval")))

let test_check_method_bad_receiver () =
  expect_error ~substring:"receiver"
    {|
MODULE M;
TYPE
  A = OBJECT METHODS m () := Impl; END;
  B = OBJECT END;
PROCEDURE Impl (self: B) = BEGIN END Impl;
BEGIN
END M.
|}

let test_check_recursive_type () =
  let p =
    check
      {|
MODULE M;
TYPE
  List = REF Cell;
  Cell = RECORD head: INTEGER; tail: List; END;
VAR l: List;
BEGIN
  l := NEW (List);
  l.head := 1;
  l.tail := NIL;
END M.
|}
  in
  ignore p

let test_check_cyclic_alias_rejected () =
  expect_error ~substring:"cyclic"
    {|
MODULE M;
TYPE A = B; B = A;
BEGIN
END M.
|}

let test_check_aggregate_assign_rejected () =
  expect_error ~substring:"aggregate"
    {|
MODULE M;
TYPE R = RECORD x: INTEGER; END;
VAR a: R; b: R;
BEGIN
  a := b;
END M.
|}

let test_check_with_alias_and_value () =
  let p =
    check
      {|
MODULE M;
TYPE R = RECORD x: INTEGER; END; P = REF R;
VAR p: P; n: INTEGER;
BEGIN
  p := NEW (P);
  WITH slot = p.x, twice = n + n DO
    slot := twice;
  END;
END M.
|}
  in
  let main = Option.get (Tast.find_proc p Tast.main_ident) in
  match (List.nth main.Tast.p_body 1).Tast.s_desc with
  | Tast.Swith ([ b1; b2 ], _) ->
    Alcotest.(check bool) "slot is an alias" true b1.Tast.wb_alias;
    Alcotest.(check bool) "twice is a value" false b2.Tast.wb_alias
  | _ -> Alcotest.fail "expected WITH"

let test_check_with_value_readonly () =
  expect_error ~substring:"read-only"
    {|
MODULE M;
VAR n: INTEGER;
BEGIN
  WITH v = n + 1 DO
    v := 3;
  END;
END M.
|}

let test_check_for_var_readonly () =
  expect_error ~substring:"read-only"
    {|
MODULE M;
BEGIN
  FOR i := 0 TO 9 DO
    i := 3;
  END;
END M.
|}

let test_check_exit_outside_loop () =
  expect_error ~substring:"EXIT"
    {|
MODULE M;
BEGIN
  EXIT;
END M.
|}

let test_check_branded () =
  let p =
    check
      {|
MODULE M;
TYPE
  Pub = OBJECT x: INTEGER; END;
  Priv = BRANDED "secret" OBJECT y: INTEGER; END;
  PR = BRANDED "pr" REF INTEGER;
VAR a: Pub; b: Priv; r: PR;
BEGIN
  a := NEW (Pub); b := NEW (Priv); r := NEW (PR);
END M.
|}
  in
  let env = p.Tast.tenv in
  let priv = List.assoc (Ident.intern "Priv") p.Tast.type_names in
  match Types.desc env priv with
  | Types.Dobject { Types.obj_brand = Some "secret"; _ } -> ()
  | _ -> Alcotest.fail "expected brand on Priv"

let test_check_const () =
  let p =
    check
      {|
MODULE M;
CONST N = 4 * 10 + 2;
VAR a: ARRAY [0..9] OF INTEGER;
BEGIN
  a[0] := N;
  PrintInt (N);
END M.
|}
  in
  ignore p

let test_check_unknown_name () = expect_error ~substring:"unknown name"
  "MODULE M; BEGIN PrintInt (nope); END M."

let test_check_arity () =
  expect_error ~substring:"argument"
    {|
MODULE M;
PROCEDURE F (a: INTEGER; b: INTEGER) = BEGIN END F;
BEGIN
  F (1);
END M.
|}

(* --- pretty printer -------------------------------------------------- *)

let test_pp_roundtrip_workloads () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let src = w.Workloads.Workload.source in
      let printed = Ast_pp.reprint ~file:"w" src in
      (* fixed point: printing is layout-stable *)
      Alcotest.(check string)
        (w.Workloads.Workload.name ^ ": print is a fixed point")
        printed
        (Ast_pp.reprint ~file:"w2" printed);
      (* semantic equivalence on the simulator *)
      let o1 = Sim.Interp.run (Ir.Lower.lower_string ~file:"a" src) in
      let o2 = Sim.Interp.run (Ir.Lower.lower_string ~file:"b" printed) in
      Alcotest.(check string)
        (w.Workloads.Workload.name ^ ": reprint behaves identically")
        o1.Sim.Interp.output o2.Sim.Interp.output)
    Workloads.Suite.all

let test_pp_escapes () =
  let src =
    "MODULE M;\nBEGIN\n  PrintChar ('\\n');\n  Print (\"a\\\"b\\\\c\");\nEND M.\n"
  in
  let printed = Ast_pp.reprint ~file:"esc" src in
  let o1 = Sim.Interp.run (Ir.Lower.lower_string ~file:"a" src) in
  let o2 = Sim.Interp.run (Ir.Lower.lower_string ~file:"b" printed) in
  Alcotest.(check string) "escaped literals survive" o1.Sim.Interp.output
    o2.Sim.Interp.output

let () =
  Alcotest.run "frontend"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "keywords" `Quick test_lex_keywords_vs_idents;
          Alcotest.test_case "nested comments" `Quick test_lex_comments_nest;
          Alcotest.test_case "char and string" `Quick test_lex_char_and_string;
          Alcotest.test_case "dotdot" `Quick test_lex_dotdot;
          Alcotest.test_case "error" `Quick test_lex_error ] );
      ( "parser",
        [ Alcotest.test_case "figure1" `Quick test_parse_figure1;
          Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "access path" `Quick test_parse_access_path;
          Alcotest.test_case "relations" `Quick test_parse_relations_nonassoc;
          Alcotest.test_case "objects with methods" `Quick test_parse_object_with_methods;
          Alcotest.test_case "decl order" `Quick test_parse_decl_order_preserved;
          Alcotest.test_case "error location" `Quick test_parse_error_location ] );
      ( "typecheck",
        [ Alcotest.test_case "figure1 subtyping" `Quick test_check_figure1;
          Alcotest.test_case "figure3" `Quick test_check_figure3;
          Alcotest.test_case "subtype assignment" `Quick test_check_subtype_assign;
          Alcotest.test_case "nil" `Quick test_check_nil;
          Alcotest.test_case "var param exact type" `Quick test_check_var_param_exact_type;
          Alcotest.test_case "ref record sugar" `Quick test_check_ref_record_sugar;
          Alcotest.test_case "open array" `Quick test_check_open_array;
          Alcotest.test_case "array bounds" `Quick test_check_fixed_array_bounds_decl;
          Alcotest.test_case "method dispatch tables" `Quick test_check_method_dispatch;
          Alcotest.test_case "method bad receiver" `Quick test_check_method_bad_receiver;
          Alcotest.test_case "recursive type" `Quick test_check_recursive_type;
          Alcotest.test_case "cyclic alias" `Quick test_check_cyclic_alias_rejected;
          Alcotest.test_case "aggregate assign" `Quick test_check_aggregate_assign_rejected;
          Alcotest.test_case "with alias/value" `Quick test_check_with_alias_and_value;
          Alcotest.test_case "with value readonly" `Quick test_check_with_value_readonly;
          Alcotest.test_case "for var readonly" `Quick test_check_for_var_readonly;
          Alcotest.test_case "exit outside loop" `Quick test_check_exit_outside_loop;
          Alcotest.test_case "branded" `Quick test_check_branded;
          Alcotest.test_case "const" `Quick test_check_const;
          Alcotest.test_case "unknown name" `Quick test_check_unknown_name;
          Alcotest.test_case "arity" `Quick test_check_arity ] );
      ( "printer",
        [ Alcotest.test_case "workload round trips" `Slow test_pp_roundtrip_workloads;
          Alcotest.test_case "escapes" `Quick test_pp_escapes ] ) ]
