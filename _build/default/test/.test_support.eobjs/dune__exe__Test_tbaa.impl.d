test/test_tbaa.ml: Alcotest Apath Cfg Fun Ident Ir List Lower Minim3 Reg Support Tast Tbaa Typecheck Types
