test/test_opt.ml: Alcotest Cfg Ident Instr Ir Lower Opt Printf Sim Support Tbaa Workloads
