test/test_tbaa.mli:
