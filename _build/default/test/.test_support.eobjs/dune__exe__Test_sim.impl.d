test/test_sim.ml: Alcotest Ir List Lower Minim3 Opt Sim Support Tbaa
