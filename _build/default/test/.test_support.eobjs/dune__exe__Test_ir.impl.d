test/test_ir.ml: Alcotest Apath Array Callgraph Cfg Dataflow Dom Ident Instr Ir List Loops Lower Minim3 Printf Reg Support Types Vec
