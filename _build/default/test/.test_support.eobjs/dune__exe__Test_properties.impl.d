test/test_properties.ml: Alcotest Apath Gen_prog Hashtbl Ir List Lower Minim3 Opt QCheck QCheck_alcotest Sim String Tbaa
