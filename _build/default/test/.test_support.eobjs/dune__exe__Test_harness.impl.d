test/test_harness.ml: Alcotest Harness List Opt Option Sim Tbaa Workloads
