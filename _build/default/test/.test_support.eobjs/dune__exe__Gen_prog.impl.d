test/gen_prog.ml: Buffer Fun Int64 List Printf Prng QCheck String Support
