test/test_workloads.ml: Alcotest List Opt Printf Sim String Tbaa Workloads
