test/test_support.ml: Alcotest Bitset Fun Ident List Prng QCheck QCheck_alcotest String Support Table Union_find Vec
