test/test_frontend.ml: Alcotest Ast Ast_pp Diag Fmt Ident Ir Lexer List Loc Minim3 Option Parser Printf Sim String Support Tast Token Typecheck Types Workloads
