(* A deterministic random MiniM3 program generator for property testing.

   Programs are well-typed by construction over a fixed prelude (an object
   hierarchy with subtyping, a record behind a REF, an open integer array,
   integer globals) and exercise: field/deref/subscript paths, pointer
   assignment (including upcasts), NEW, procedure calls, VAR actuals, WITH
   aliases, FOR loops and conditionals. Loops are bounded by construction;
   any NIL dereference or wild subscript is a *defined* soft fault of the
   total simulator semantics, so outputs remain comparable across
   optimization levels. *)

open Support

let int_designators =
  [ "g1"; "g2"; "t.a"; "t.b"; "s.c"; "s.a"; "pr.x"; "pr.y" ]

let rec int_expr rng depth =
  if depth <= 0 then
    match Prng.int rng 4 with
    | 0 -> string_of_int (Prng.int rng 100)
    | 1 -> "g1"
    | 2 -> "g2"
    | _ -> Prng.pick rng int_designators
  else
    match Prng.int rng 8 with
    | 0 -> string_of_int (Prng.int rng 100)
    | 1 -> Prng.pick rng int_designators
    | 2 -> "t.next.a"
    | 3 -> Printf.sprintf "vi[Abs (%s) MOD 8]" (int_expr rng (depth - 1))
    | 4 ->
      Printf.sprintf "(%s + %s)" (int_expr rng (depth - 1)) (int_expr rng (depth - 1))
    | 5 ->
      Printf.sprintf "(%s - %s)" (int_expr rng (depth - 1)) (int_expr rng (depth - 1))
    | 6 -> Printf.sprintf "(%s * 3)" (int_expr rng (depth - 1))
    | _ -> Printf.sprintf "Abs (%s)" (int_expr rng (depth - 1))

let bool_expr rng depth =
  match Prng.int rng 4 with
  | 0 -> Printf.sprintf "(%s < %s)" (int_expr rng depth) (int_expr rng depth)
  | 1 -> Printf.sprintf "(%s = %s)" (int_expr rng depth) (int_expr rng depth)
  | 2 -> "(t.next # NIL)"
  | _ -> Printf.sprintf "NOT (%s > 10)" (int_expr rng depth)

let indent n = String.make (2 * n) ' '

(* [callable] = indices of procedures this body may call. *)
let rec stmts rng ~callable ~depth ~budget buf =
  let n = 1 + Prng.int rng (max 1 budget) in
  for _ = 1 to n do
    stmt rng ~callable ~depth ~budget:(budget - 1) buf
  done

and stmt rng ~callable ~depth ~budget buf =
  let pad = indent depth in
  match Prng.int rng 12 with
  | 0 | 1 | 2 ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s := %s;\n" pad
         (Prng.pick rng ("vi[Abs (g1) MOD 8]" :: int_designators))
         (int_expr rng 2))
  | 3 ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" pad
         (Prng.pick rng
            [ "t := s;"; "t := t.next;"; "t.next := t;"; "t.next := s;";
              "s := NEW (S);"; "pr := NEW (PR);"; "t := NEW (T);" ]))
  | 4 when budget > 0 ->
    Buffer.add_string buf (Printf.sprintf "%sIF %s THEN\n" pad (bool_expr rng 1));
    stmts rng ~callable ~depth:(depth + 1) ~budget buf;
    if Prng.bool rng then begin
      Buffer.add_string buf (Printf.sprintf "%sELSE\n" pad);
      stmts rng ~callable ~depth:(depth + 1) ~budget buf
    end;
    Buffer.add_string buf (Printf.sprintf "%sEND;\n" pad)
  | 5 when budget > 0 && depth < 4 ->
    let v = Printf.sprintf "i%d" depth in
    Buffer.add_string buf
      (Printf.sprintf "%sFOR %s := 0 TO %d DO\n" pad v (1 + Prng.int rng 4));
    (* the loop variable is usable as an int expression via globals only;
       keep bodies independent of it for simplicity *)
    stmts rng ~callable ~depth:(depth + 1) ~budget buf;
    Buffer.add_string buf (Printf.sprintf "%sEND;\n" pad)
  | 6 when callable <> [] ->
    Buffer.add_string buf
      (Printf.sprintf "%sP%d (%s);\n" pad (Prng.pick rng callable) (int_expr rng 1))
  | 7 ->
    Buffer.add_string buf
      (Printf.sprintf "%sBump (%s);\n" pad (Prng.pick rng int_designators))
  | 8 when depth < 4 ->
    let v = Printf.sprintf "w%d" depth in
    Buffer.add_string buf
      (Printf.sprintf "%sWITH %s = %s DO\n" pad v (Prng.pick rng int_designators));
    Buffer.add_string buf
      (Printf.sprintf "%s  %s := %s + 1;\n" pad v v);
    Buffer.add_string buf (Printf.sprintf "%sEND;\n" pad)
  | _ ->
    Buffer.add_string buf
      (Printf.sprintf "%sg2 := %s;\n" pad (int_expr rng 2))

let generate seed =
  let rng = Prng.create (Int64.of_int seed) in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    {|MODULE Gen;
TYPE
  T = OBJECT a, b: INTEGER; next: T; END;
  S = T OBJECT c: INTEGER; END;
  R = RECORD x, y: INTEGER; END;
  PR = REF R;
  VI = REF ARRAY OF INTEGER;
VAR
  t: T; s: S; pr: PR; vi: VI; g1: INTEGER; g2: INTEGER;

PROCEDURE Bump (VAR z: INTEGER) =
  BEGIN
    z := z + 1;
  END Bump;
|};
  let nprocs = 1 + Prng.int rng 3 in
  for p = 0 to nprocs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "\nPROCEDURE P%d (n: INTEGER) =\n  BEGIN\n" p);
    Buffer.add_string buf (Printf.sprintf "    g1 := g1 + n;\n");
    stmts rng ~callable:(List.init p Fun.id) ~depth:2 ~budget:3 buf;
    Buffer.add_string buf (Printf.sprintf "  END P%d;\n" p)
  done;
  Buffer.add_string buf "\nBEGIN\n";
  Buffer.add_string buf
    {|  t := NEW (S);
  t.next := NEW (T);
  s := NEW (S);
  pr := NEW (PR);
  vi := NEW (VI, 8);
  g1 := 7;
|};
  stmts rng ~callable:(List.init nprocs Fun.id) ~depth:1 ~budget:4 buf;
  (* Observe everything. *)
  Buffer.add_string buf
    {|  PrintInt (g1); PrintInt (g2);
  PrintInt (t.a); PrintInt (t.b);
  PrintInt (s.a); PrintInt (s.c);
  PrintInt (pr.x); PrintInt (pr.y);
  IF t.next # NIL THEN PrintInt (t.next.a); END;
  FOR i := 0 TO 7 DO PrintInt (vi[i]); END;
END Gen.
|};
  Buffer.contents buf

(* QCheck arbitrary: a seed rendered as its generated source on failure. *)
let arbitrary =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed %d:\n%s" seed (generate seed))
    QCheck.Gen.(int_bound 1_000_000)
